"""Per-domain progress-tracker views with broadcast remote updates.

The serial runtime uses one centralized zero-latency :class:`ProgressTracker`.
That cannot be parallelized byte-identically — a remote worker's capability
drop cannot be visible in the same simulated instant without a global
synchronization per event — so *sharded* runs (any ``--parallel N``,
including the in-process ``N=0`` reference executor) give each domain its own
tracker **view**: local accounting applies immediately, and is simultaneously
logged for broadcast to every other domain, where it is applied after one
delivery quantum of simulated latency.

Updates are net-coalesced per quantum per ``(kind, index, time)`` and each
quantum's batch is applied atomically at the receiver, so a view never
observes a torn prefix of another domain's activation.  Per-source batches
are delivered in generation order (delivery time is monotone in the quantum
id), which preserves the standard distributed-Naiad conservatism argument:
any outstanding work at ``t`` is justified by some visible ``+1`` whose
``-1`` cannot arrive earlier than the work's own accounting.

One asymmetry survives: a third-party view may apply a *consume* (``-1``)
before the matching *send* (``+1``) from a different source domain, driving
a channel's in-flight count transiently negative.  :class:`SlackAntichain`
tolerates that (negative counts are kept but masked from the frontier);
the base :class:`MutableAntichain` would raise.  Capabilities never go
negative per-view — every worker only drops capabilities it itself holds,
so per-source prefixes are non-negative and sums of non-negative prefixes
stay non-negative.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable

from repro.timely.antichain import Antichain, MutableAntichain
from repro.timely.graph import GraphBuilder
from repro.timely.progress import ProgressTracker
from repro.timely.timestamp import Timestamp

# Update kinds (ints: compact to pickle, fast to compare).
CAP = 0  # capability_update(op, time, delta)
MSG = 1  # in-flight update(channel, time, delta); delta<0 == consumed

#: One broadcastable accounting update: (kind, index, time, delta).
Update = tuple[int, int, Timestamp, int]


class SlackAntichain(MutableAntichain):
    """A counted antichain that tolerates transiently negative counts.

    ``frontier()`` reflects only positive counts; ``update`` returns True
    exactly when the set of positive-count timestamps may have changed.
    """

    def update(self, time: Timestamp, delta: int) -> bool:
        if delta == 0:
            return False
        old_count = self._counts[time]
        new_count = old_count + delta
        if new_count == 0:
            del self._counts[time]
        else:
            self._counts[time] = new_count
        if (old_count > 0) == (new_count > 0):
            return False
        self._frontier = None
        return True

    def frontier(self) -> Antichain:
        if self._frontier is None:
            frontier = Antichain()
            for time, count in self._counts.items():
                if count > 0:
                    frontier.insert(time)
            self._frontier = frontier
        return self._frontier

    def is_empty(self) -> bool:
        return not any(count > 0 for count in self._counts.values())

    def total(self) -> int:
        return sum(count for count in self._counts.values() if count > 0)

    def __repr__(self) -> str:
        return f"SlackAntichain({dict(self._counts)!r})"


class DomainTracker(ProgressTracker):
    """A domain's view of global progress.

    Local accounting calls behave exactly like the base tracker *and* append
    ``(gen, kind, index, time, delta)`` to an update log (``gen`` is the
    domain clock at call time).  :meth:`take_update_batches` drains the log
    into quantized delivery batches for broadcast; :meth:`apply_remote`
    applies a received batch without re-logging it.
    """

    def __init__(self, graph: GraphBuilder, clock: Callable[[], float]) -> None:
        super().__init__(graph)
        # In-flight views may dip negative (see module docstring).
        self._in_flight = [SlackAntichain() for _ in graph.channels]
        self._clock = clock
        self._log: list[tuple[float, int, int, Timestamp, int]] = []

    # -- logged local accounting ------------------------------------------

    def capability_update(self, op: int, time: Timestamp, delta: int) -> None:
        if delta:
            self._log.append((self._clock(), CAP, op, time, delta))
        super().capability_update(op, time, delta)

    def message_sent(self, channel: int, time: Timestamp, count: int = 1) -> None:
        if count:
            self._log.append((self._clock(), MSG, channel, time, count))
        super().message_sent(channel, time, count)

    def message_consumed(self, channel: int, time: Timestamp, count: int = 1) -> None:
        if count:
            self._log.append((self._clock(), MSG, channel, time, -count))
        super().message_consumed(channel, time, count)

    # -- broadcast plumbing ------------------------------------------------

    def seed_capability(self, op: int, time: Timestamp, delta: int) -> None:
        """Apply a setup-time capability without logging it for broadcast.

        Used for source seeding: every domain seeds the *full* worker set's
        source capabilities locally and identically, so the global t=0 view
        is consistent without any messages.
        """
        super().capability_update(op, time, delta)

    def take_update_batches(
        self, quantum: float
    ) -> list[tuple[float, tuple[Update, ...]]]:
        """Drain the local log into ``(delivery_time, batch)`` pairs.

        Updates are bucketed by delivery quantum (``ceil((gen + q) / q)``
        with ``q`` = the lookahead), net-coalesced per ``(kind, index,
        time)`` within a bucket (first-appearance order — deterministic),
        and stamped ``delivery = max(qid * q, max_gen + q)`` — the clamp
        guards against an ulp of float rounding ever violating the
        ``delivery >= gen + lookahead`` conservatism bound.  Delivery times
        are monotone in quantum id, so per-source FIFO order is preserved.
        """
        log = self._log
        if not log:
            return []
        self._log = []
        buckets: dict[int, tuple[float, dict[tuple[int, int, Timestamp], int]]] = {}
        for gen, kind, index, time, delta in log:
            qid = math.ceil((gen + quantum) / quantum)
            entry = buckets.get(qid)
            if entry is None:
                buckets[qid] = (gen, {(kind, index, time): delta})
                continue
            max_gen, nets = entry
            if gen > max_gen:
                buckets[qid] = (gen, nets)
            key = (kind, index, time)
            nets[key] = nets.get(key, 0) + delta
        batches: list[tuple[float, tuple[Update, ...]]] = []
        for qid in sorted(buckets):
            max_gen, nets = buckets[qid]
            batch = tuple(
                (kind, index, time, delta)
                for (kind, index, time), delta in nets.items()
                if delta != 0
            )
            if batch:
                delivery = max(qid * quantum, max_gen + quantum)
                batches.append((delivery, batch))
        return batches

    def apply_remote(self, batch: Iterable[Update]) -> None:
        """Apply one received batch atomically, without re-logging it."""
        cap = ProgressTracker.capability_update
        msg = ProgressTracker.message_sent
        for kind, index, time, delta in batch:
            if kind == CAP:
                cap(self, index, time, delta)
            else:
                msg(self, index, time, delta)
