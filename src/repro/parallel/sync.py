"""Conservative lookahead synchronization across shards.

One barrier round of the protocol (the classic synchronous
conservative-window scheme, null-message-free):

1. Compute each domain's *effective next time* ``eff[d]``: the earlier of
   its local heap peek and the earliest delivery among entries queued for
   it.  ``inf`` everywhere means the simulation is drained — terminate.
2. Grant every domain the same global bound ``B = min_d eff[d] +
   lookahead`` (``inf`` for a single domain): no event anywhere in the
   system exists below ``min eff``, and any cross-shard effect of an event
   is delayed by at least the minimum cross-process link latency.
3. Every domain with queued entries or ``eff[d] < B`` runs one window:
   inject its inbox, fire local events strictly below the grant, emit data
   and progress entries for other domains.  Route those into inboxes for
   the next round.

Safety: every event fired in round ``j`` has time ``>= min_eff(j)``, so
every entry generated in round ``j`` has delivery ``>= min_eff(j) +
lookahead = B(j)``; since every domain's clock stays strictly below
``B(j)``, injections never travel into a shard's past — *including*
transitive chains (a message sent mid-window cannot provoke a reply
inside the same window, because the reply is itself an effect of an
in-window event and therefore also lands at ``>= B(j)``).
``DomainSimulator`` enforces the invariant with a hard error.  The
tempting sharper per-domain grant ``B[d] = min_{o != d} eff[o] +
lookahead`` is **unsound** for exactly that chain reason: a domain
running far past the global minimum can send a message that wakes a peer
whose induced reply lands in the sender's already-executed window.

Progress: every domain that fires in round ``j`` drains its heap below
``B(j)`` and all new entries deliver at ``>= B(j)``, so the global
minimum advances by at least one full lookahead per round — the round
count is bounded by (simulated duration / lookahead).

Determinism: the sequence of ``(grant, inbox)`` pairs per domain is a
pure function of this loop — the executor (in-process or forked, any
process count) cannot influence it, which is why every ``--parallel N``
produces identical simulations.
"""

from __future__ import annotations

import math
from typing import Protocol

_INF = math.inf

# Backstop against a protocol bug looping forever; real runs take
# (duration / lookahead) rounds, a few hundred at ms-scale links.
MAX_ROUNDS = 10_000_000


class ParallelStall(RuntimeError):
    """The protocol found live work but could not grant any domain a
    window — a lookahead/accounting bug, never a user error."""


class ShardExecutor(Protocol):
    """What `run_protocol` needs from an executor (local or forked)."""

    lookahead: float

    def domains(self) -> list: ...
    def initial_next_times(self) -> dict: ...
    def run_round(self, assignments: dict) -> dict: ...


def run_protocol(executor) -> int:
    """Drive shards to global quiescence; returns the number of rounds."""
    domains = list(executor.domains())
    lookahead = executor.lookahead
    next_times = dict(executor.initial_next_times())
    inboxes: dict = {d: [] for d in domains}
    single = len(domains) == 1
    rounds = 0
    while True:
        eff = {}
        for d in domains:
            inbox_min = min(
                (entry.delivery for entry in inboxes[d]), default=_INF
            )
            eff[d] = min(next_times[d], inbox_min)
        minimum = min(eff.values())
        if minimum == _INF:
            return rounds
        grant = _INF if single else minimum + lookahead
        active = [d for d in domains if inboxes[d] or eff[d] < grant]
        if not active:
            raise ParallelStall(
                "no shard is grantable but work remains: "
                + ", ".join(
                    f"domain {d}: next={eff[d]:.9f} grant={grant:.9f}"
                    for d in domains
                    if eff[d] != _INF
                )
            )
        rounds += 1
        if rounds > MAX_ROUNDS:
            raise ParallelStall(
                f"exceeded {MAX_ROUNDS} synchronization rounds; "
                "the window protocol is not converging"
            )
        assignments = {d: (grant, inboxes[d]) for d in active}
        for d in active:
            inboxes[d] = []
        results = executor.run_round(assignments)
        for d, (next_time, outbox) in results.items():
            next_times[d] = next_time
            for entry in outbox:
                inboxes[entry.dst_domain].append(entry)
