"""Declarative scaling plans: timed join/leave events for scripted runs.

A :class:`ScalingPlan` is pure data — a time-ordered list of membership
actions — mirroring the chaos layer's :class:`~repro.chaos.plan.FaultPlan`:
the same plan can be validated, printed, recorded into an event log, and
replayed byte-identically.  The canonical text form (accepted by the CLI's
``--scaling-plan`` and produced by :meth:`ScalingPlan.spec`) is::

    join@2.0:4,5;leave@5.0:4,5

i.e. semicolon-separated events, each ``action@seconds:worker,worker,...``.

Validation simulates the lifecycle against the provisioned worker universe:
joins must target standby slots, leaves must target active ones, worker 0
can never leave (it carries the control stream for plain controllers), and
at least one worker must stay active at all times.  Active sets are kept
contiguous prefixes ``0..k-1`` — joins admit the lowest standby ids, leaves
drain the highest active ids — which is what the planner's range-based
``spread`` objective expects.
"""

from __future__ import annotations

from dataclasses import dataclass

JOIN = "join"
LEAVE = "leave"
ACTIONS = (JOIN, LEAVE)


@dataclass(frozen=True)
class ScalingEvent:
    """One timed membership action: ``workers`` join or leave at ``at_s``."""

    at_s: float
    action: str
    workers: tuple

    def spec(self) -> str:
        """The event's canonical text form."""
        ids = ",".join(str(w) for w in self.workers)
        return f"{self.action}@{self.at_s:g}:{ids}"


@dataclass(frozen=True)
class ScalingPlan:
    """A complete scripted scaling schedule for one run."""

    events: tuple = ()

    def spec(self) -> str:
        """Canonical text form; ``parse`` inverts it exactly."""
        return ";".join(event.spec() for event in self.events)

    @classmethod
    def parse(cls, spec: str) -> "ScalingPlan":
        """Parse the ``action@seconds:ids`` text form.

        Raises :class:`ValueError` with the offending fragment on any
        malformed piece; structural validation against a worker universe
        is separate (:meth:`validate`).
        """
        events = []
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            try:
                head, ids = part.split(":", 1)
                action, at = head.split("@", 1)
            except ValueError:
                raise ValueError(
                    f"malformed scaling event {part!r}; "
                    "expected 'action@seconds:worker,worker'"
                ) from None
            action = action.strip()
            if action not in ACTIONS:
                raise ValueError(
                    f"unknown scaling action {action!r}; pick one of {ACTIONS}"
                )
            try:
                at_s = float(at)
                workers = tuple(sorted(int(w) for w in ids.split(",")))
            except ValueError:
                raise ValueError(
                    f"malformed scaling event {part!r}: bad time or worker id"
                ) from None
            if not workers:
                raise ValueError(f"scaling event {part!r} names no workers")
            events.append(ScalingEvent(at_s=at_s, action=action, workers=workers))
        return cls(events=tuple(events))

    def validate(self, num_workers: int, active_workers: int) -> None:
        """Check the plan against a provisioned universe.

        ``active_workers`` is the initially-active prefix count.  Raises
        :class:`ValueError` on the first inconsistency.
        """
        active = set(range(active_workers))
        standby = set(range(active_workers, num_workers))
        last_at = float("-inf")
        for event in self.events:
            if event.at_s < 0:
                raise ValueError(f"scaling event before t=0: {event.spec()!r}")
            if event.at_s < last_at:
                raise ValueError(
                    f"scaling events out of order at {event.spec()!r}"
                )
            last_at = event.at_s
            workers = set(event.workers)
            if len(workers) != len(event.workers):
                raise ValueError(f"duplicate workers in {event.spec()!r}")
            bad = [w for w in workers if not 0 <= w < num_workers]
            if bad:
                raise ValueError(
                    f"workers {bad} outside provisioned range "
                    f"0..{num_workers - 1} in {event.spec()!r}"
                )
            if event.action == JOIN:
                not_standby = sorted(workers - standby)
                if not_standby:
                    raise ValueError(
                        f"join targets non-standby workers {not_standby} "
                        f"in {event.spec()!r}"
                    )
                # Contiguity: joins must admit exactly the next standby ids.
                expected = set(sorted(standby)[: len(workers)])
                if workers != expected:
                    raise ValueError(
                        f"joins must admit the lowest standby ids "
                        f"{sorted(expected)}, got {sorted(workers)}"
                    )
                active |= workers
                standby -= workers
            else:
                if 0 in workers:
                    raise ValueError(
                        "worker 0 cannot leave (it carries the control stream)"
                    )
                not_active = sorted(workers - active)
                if not_active:
                    raise ValueError(
                        f"leave targets non-active workers {not_active} "
                        f"in {event.spec()!r}"
                    )
                if not active - workers:
                    raise ValueError("plan would drain every active worker")
                # Contiguity: leaves must drain the highest active ids.
                expected = set(sorted(active)[-len(workers):])
                if workers != expected:
                    raise ValueError(
                        f"leaves must drain the highest active ids "
                        f"{sorted(expected)}, got {sorted(workers)}"
                    )
                active -= workers

    def final_active(self, active_workers: int) -> int:
        """Active-worker count after every event has applied."""
        count = active_workers
        for event in self.events:
            delta = len(event.workers)
            count += delta if event.action == JOIN else -delta
        return count
