"""Worker lifecycle tracking: the cluster's membership directory.

The runtime provisions a fixed universe of worker slots (``num_workers`` —
simulated processes exist for all of them up front), but only a subset is
*active*: fed by the open-loop source and owning bins.  The directory is
the single authority on which slot is in which lifecycle state::

    standby -> joining -> active -> draining -> retired

``standby`` slots are provisioned but idle (their input handles advance,
they own nothing).  A ``joining`` worker is being seeded with bins by the
scaling coordinator; it becomes ``active`` when the seeding migration's
frontier has passed.  A ``draining`` worker is being evacuated; it becomes
``retired`` once it owns zero bins and its data handle has closed.
Retirement is terminal — closed input handles cannot reopen, so a retired
slot never returns (admit a fresh standby slot instead).

Every transition is published on the ``membership`` trace topic, followed
by an epoch-stamped :class:`~repro.runtime_events.events.MembershipEpoch`
view; epochs increase monotonically per transition so subscribers can
order views without comparing tuples.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime_events.events import MembershipEpoch, WorkerStateChanged

STANDBY = "standby"
JOINING = "joining"
ACTIVE = "active"
DRAINING = "draining"
RETIRED = "retired"

STATES = (STANDBY, JOINING, ACTIVE, DRAINING, RETIRED)

_LEGAL = {
    STANDBY: (JOINING,),
    JOINING: (ACTIVE,),
    ACTIVE: (DRAINING,),
    DRAINING: (RETIRED,),
    RETIRED: (),
}


class MembershipError(RuntimeError):
    """An illegal lifecycle transition or malformed membership request."""


class MembershipDirectory:
    """Tracks every provisioned worker slot through the lifecycle.

    ``active_workers`` names how many slots start active (a contiguous
    prefix ``0..active_workers-1``); the rest start standby.  ``sim`` (when
    given) supplies timestamps and the trace bus; without it the directory
    works standalone with ``at=0.0`` and no publication (unit tests).
    """

    def __init__(
        self,
        num_workers: int,
        active_workers: Optional[int] = None,
        sim=None,
    ) -> None:
        if num_workers < 1:
            raise MembershipError("need at least one provisioned worker")
        active = num_workers if active_workers is None else active_workers
        if not 1 <= active <= num_workers:
            raise MembershipError(
                f"active_workers must be in 1..{num_workers}, got {active}"
            )
        self.num_workers = num_workers
        self._sim = sim
        self._states = [
            ACTIVE if w < active else STANDBY for w in range(num_workers)
        ]
        self.epoch = 0
        # (at, worker, prev, state) — the full transition history, exposed
        # on the experiment result.
        self.history: list[tuple] = []

    # -- queries ---------------------------------------------------------------

    def state_of(self, worker: int) -> str:
        """Lifecycle state of ``worker``."""
        return self._states[worker]

    def _in(self, state: str) -> tuple:
        return tuple(
            w for w, s in enumerate(self._states) if s == state
        )

    def active(self) -> tuple:
        """Workers currently active, ascending."""
        return self._in(ACTIVE)

    def joining(self) -> tuple:
        return self._in(JOINING)

    def draining(self) -> tuple:
        return self._in(DRAINING)

    def retired(self) -> tuple:
        return self._in(RETIRED)

    def standby(self) -> tuple:
        return self._in(STANDBY)

    def is_active(self, worker: int) -> bool:
        return self._states[worker] == ACTIVE

    def view(self) -> MembershipEpoch:
        """The current epoch-stamped membership view."""
        return MembershipEpoch(
            epoch=self.epoch,
            active=self.active(),
            joining=self.joining(),
            draining=self.draining(),
            at=self._now(),
        )

    # -- transitions -----------------------------------------------------------

    def mark_joining(self, worker: int) -> None:
        self._transition(worker, JOINING)

    def mark_active(self, worker: int) -> None:
        self._transition(worker, ACTIVE)

    def mark_draining(self, worker: int) -> None:
        self._transition(worker, DRAINING)

    def mark_retired(self, worker: int) -> None:
        self._transition(worker, RETIRED)

    def _transition(self, worker: int, state: str) -> None:
        if not 0 <= worker < self.num_workers:
            raise MembershipError(
                f"worker {worker} outside provisioned range 0..{self.num_workers - 1}"
            )
        prev = self._states[worker]
        if state not in _LEGAL[prev]:
            raise MembershipError(
                f"illegal transition for worker {worker}: {prev} -> {state}"
            )
        self._states[worker] = state
        self.epoch += 1
        at = self._now()
        self.history.append((at, worker, prev, state))
        trace = getattr(self._sim, "trace", None)
        if trace is not None and trace.wants_membership:
            trace.publish(
                WorkerStateChanged(worker=worker, prev=prev, state=state, at=at)
            )
            trace.publish(self.view())

    def _now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0
