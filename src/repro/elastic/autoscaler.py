"""The autoscaler: closing the loop from load telemetry to membership.

A Dhalion-style policy loop: every ``decide_s`` simulated seconds the
autoscaler reads the windowed per-worker load from
:class:`~repro.planner.telemetry.LoadTelemetry`, averages it over the
*active* workers only (standby and retired slots would dilute the mean),
and feeds the ``threshold`` policy:

* mean load ``>= scale_out_load`` for ``trigger_samples`` consecutive
  decisions arms a scale-out of ``step`` workers;
* mean load ``<= scale_in_load`` for ``trigger_samples`` consecutive
  decisions arms a scale-in of ``step`` workers;
* anything between the thresholds resets both streaks.

Anti-thrash, SkewDetector-style: the hysteresis band between the two
thresholds means a workload sitting near one threshold cannot alternate
decisions, the consecutive-sample requirement filters single-window
spikes, and ``cooldown_s`` after any action lets the migrated load
picture stabilize before the next decision counts.  Bounds
(``min_workers``/``max_workers``/provisioned slots) and an in-flight
scaling operation suppress a fired trigger; suppressions are published as
``hold`` decisions with the suppressing reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.runtime_events.events import AutoscaleDecision

# Registered policy names -> one-line description (printed by `repro.cli
# list`).  The policy field of AutoscalerConfig must name one of these.
POLICIES = {
    "threshold": (
        "hysteresis thresholds on mean active-worker load "
        "(scale_out_load/scale_in_load, consecutive samples, cooldown)"
    ),
}


@dataclass
class AutoscalerConfig:
    """Knobs of the autoscaler's policy loop."""

    policy: str = "threshold"
    # Decision cadence: first decision at start_s, then every decide_s,
    # until stop_s (None = the experiment duration).
    start_s: float = 1.0
    decide_s: float = 0.5
    stop_s: Optional[float] = None
    # Threshold policy: records/s per active worker.
    scale_out_load: float = 1500.0
    scale_in_load: float = 400.0
    trigger_samples: int = 2
    cooldown_s: float = 3.0
    # Membership bounds: max_workers of 0 means "every provisioned slot".
    min_workers: int = 1
    max_workers: int = 0
    step: int = 1

    def validate(self, num_workers: int) -> None:
        """Check the knobs against a provisioned universe."""
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown autoscaler policy {self.policy!r}; "
                f"registered: {tuple(POLICIES)}"
            )
        if self.scale_in_load >= self.scale_out_load:
            raise ValueError(
                "scale_in_load must be below scale_out_load "
                f"({self.scale_in_load} >= {self.scale_out_load}): the gap "
                "is the hysteresis band that prevents thrash"
            )
        if self.min_workers < 1:
            raise ValueError("min_workers must be at least 1")
        if self.max_workers and not (
            self.min_workers <= self.max_workers <= num_workers
        ):
            raise ValueError(
                f"max_workers must be in {self.min_workers}.."
                f"{num_workers}, got {self.max_workers}"
            )
        if self.step < 1:
            raise ValueError("step must be at least 1")
        if self.decide_s <= 0:
            raise ValueError("decide_s must be positive")


class Autoscaler:
    """Periodic policy decisions over telemetry, membership, and bounds."""

    def __init__(
        self,
        runtime,
        telemetry,
        directory,
        coordinator,
        config: AutoscalerConfig,
    ) -> None:
        self._runtime = runtime
        self._telemetry = telemetry
        self._directory = directory
        self._coordinator = coordinator
        self.config = config
        self._above = 0
        self._below = 0
        self._last_action_at = float("-inf")
        self._stopped = False
        self.decisions: list[AutoscaleDecision] = []

    def start(self) -> None:
        """Schedule the decision loop."""
        self._runtime.sim.schedule_at(self.config.start_s, self._tick)

    def stop(self) -> None:
        self._stopped = True

    # -- the decision loop -----------------------------------------------------

    def _tick(self) -> None:
        sim = self._runtime.sim
        if self._stopped or (
            self.config.stop_s is not None and sim.now > self.config.stop_s
        ):
            return
        loads = self._telemetry.worker_load()
        active = self._directory.active()
        mean = (
            sum(loads.get(w, 0.0) for w in active) / len(active)
            if active
            else 0.0
        )
        self.decide(mean, now=sim.now)
        sim.schedule(self.config.decide_s, self._tick)

    def decide(self, mean_load: float, now: float = 0.0) -> str:
        """Feed one mean-load sample through the policy; returns the action.

        Separated from the scheduling wrapper so tests can drive the
        policy sample by sample.
        """
        cfg = self.config
        if mean_load >= cfg.scale_out_load:
            self._above += 1
            self._below = 0
        elif mean_load <= cfg.scale_in_load:
            self._below += 1
            self._above = 0
        else:
            self._above = 0
            self._below = 0
        action = "none"
        if self._above >= cfg.trigger_samples:
            action = self._try_scale_out(mean_load, now)
            self._above = 0
        elif self._below >= cfg.trigger_samples:
            action = self._try_scale_in(mean_load, now)
            self._below = 0
        return action

    def _limit(self) -> int:
        provisioned = self._directory.num_workers
        return min(self.config.max_workers or provisioned, provisioned)

    def _suppressed(self, now: float) -> Optional[str]:
        if now - self._last_action_at < self.config.cooldown_s:
            return "cooldown"
        if self._coordinator is not None and self._coordinator.busy:
            return "busy"
        return None

    def _try_scale_out(self, mean_load: float, now: float) -> str:
        active = self._directory.active()
        target = min(len(active) + self.config.step, self._limit())
        reason = self._suppressed(now)
        if reason is None and target <= len(active):
            reason = "at-max"
        standby = self._directory.standby()
        if reason is None and not standby:
            reason = "no-standby"
        if reason is not None:
            self._publish("hold", reason, mean_load, len(active), target, now)
            return "hold"
        joiners = tuple(standby[: target - len(active)])
        self._last_action_at = now
        self._publish(
            "scale-out", "load-high", mean_load, len(active), target, now
        )
        self._coordinator.scale_out(joiners)
        return "scale-out"

    def _try_scale_in(self, mean_load: float, now: float) -> str:
        active = self._directory.active()
        target = max(len(active) - self.config.step, self.config.min_workers)
        reason = self._suppressed(now)
        if reason is None and target >= len(active):
            reason = "at-min"
        if reason is not None:
            self._publish("hold", reason, mean_load, len(active), target, now)
            return "hold"
        # Drain the highest active ids (worker 0 never leaves).
        leavers = tuple(active[target - len(active):])
        self._last_action_at = now
        self._publish(
            "scale-in", "load-low", mean_load, len(active), target, now
        )
        self._coordinator.scale_in(leavers)
        return "scale-in"

    def _publish(
        self,
        action: str,
        reason: str,
        mean_load: float,
        active: int,
        target: int,
        now: float,
    ) -> None:
        decision = AutoscaleDecision(
            action=action,
            reason=reason,
            mean_load=mean_load,
            active=active,
            target=target,
            at=now,
        )
        self.decisions.append(decision)
        trace = self._runtime.sim.trace if self._runtime is not None else None
        if trace is not None and trace.wants_membership:
            trace.publish(decision)
