"""Elastic cluster membership: live scale-out/scale-in for the worker set.

The worker universe is provisioned at build time (simulated processes for
every slot), but which slots are *active* — fed by the source, owning
bins — is a runtime object:

* :class:`~repro.elastic.membership.MembershipDirectory` tracks each
  slot's lifecycle (``standby -> joining -> active -> draining ->
  retired``) and publishes epoch-stamped views on the ``membership``
  trace topic;
* :class:`~repro.elastic.coordinator.ScalingCoordinator` admits joiners
  (seed bins via the planner's ``spread`` objective) and retires leavers
  (evacuate via ``drain``, verify zero resident bins, close handles) —
  both as ordinary fluid migrations through the existing controllers;
* :class:`~repro.elastic.autoscaler.Autoscaler` closes the loop from
  :class:`~repro.planner.telemetry.LoadTelemetry` to scale decisions with
  hysteresis, consecutive-sample triggers, and cooldown;
* :class:`~repro.elastic.plan.ScalingPlan` scripts timed join/leave
  events for reproducible experiments.
"""

from repro.elastic.autoscaler import POLICIES, Autoscaler, AutoscalerConfig
from repro.elastic.coordinator import ScalingCoordinator, ScalingOp, ScalingReport
from repro.elastic.membership import (
    ACTIVE,
    DRAINING,
    JOINING,
    RETIRED,
    STANDBY,
    STATES,
    MembershipDirectory,
    MembershipError,
)
from repro.elastic.plan import ScalingEvent, ScalingPlan

__all__ = [
    "ACTIVE",
    "DRAINING",
    "JOINING",
    "RETIRED",
    "STANDBY",
    "STATES",
    "Autoscaler",
    "AutoscalerConfig",
    "MembershipDirectory",
    "MembershipError",
    "POLICIES",
    "ScalingCoordinator",
    "ScalingEvent",
    "ScalingOp",
    "ScalingPlan",
    "ScalingReport",
]
