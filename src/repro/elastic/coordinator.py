"""The scaling coordinator: turns membership actions into fluid migrations.

Join protocol (scale-out)::

    mark joining -> feed the new workers from the open-loop source ->
    search a ``spread`` target over the widened active range -> run the
    configured migration strategy through a controller -> on frontier-
    confirmed completion, mark active.

Drain protocol (scale-in)::

    mark draining -> stop feeding the evacuees (their input handles stay
    open so frontiers keep moving) -> search the planner's ``drain``
    target -> migrate -> verify the evacuees hold zero resident bins ->
    close their data handles -> mark retired.

The coordinator does not construct controllers itself: the harness passes
a ``controller_factory(plan, on_done)`` that wires the plain or resilient
(chaos-aware) controller exactly as scheduled migrations do, so a crash
mid-join or mid-drain goes through the same retry/retarget machinery.
When a chaos :class:`~repro.chaos.recovery.ConfigurationLedger` is shared,
the coordinator reads the converged configuration from it (crash
reconciliation may have retargeted moves); otherwise it tracks its own.

Only one scaling operation runs at a time.  A request arriving while one
is in flight is retried shortly after (scripted plans) — the autoscaler
checks ``busy`` itself and records a hold instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.elastic.membership import MembershipDirectory, MembershipError
from repro.megaphone.migration import make_plan
from repro.planner.search import drain_target, spread_target
from repro.runtime_events.events import (
    DrainCompleted,
    DrainStarted,
    ScaleOutCompleted,
    ScaleOutStarted,
)

# Retry cadence for scripted requests that land while an operation is in
# flight (simulated seconds).
_BUSY_RETRY_S = 0.25


@dataclass
class ScalingOp:
    """One completed (or in-flight) scaling operation."""

    kind: str  # "join" | "drain"
    workers: tuple
    started_at: float
    moves: int
    completed_at: Optional[float] = None
    # Bins still resident on the evacuees when their handles closed
    # (drains only) — zero for a clean drain.
    residual_bins: int = 0

    @property
    def duration_s(self) -> float:
        if self.completed_at is None:
            return 0.0
        return self.completed_at - self.started_at


@dataclass
class ScalingReport:
    """Everything the experiment result records about scaling."""

    operations: list = field(default_factory=list)

    @property
    def residual_bins(self) -> int:
        """Total bins left behind across every drain (must be zero)."""
        return sum(op.residual_bins for op in self.operations)

    def completed(self, kind: Optional[str] = None) -> list:
        return [
            op
            for op in self.operations
            if op.completed_at is not None and (kind is None or op.kind == kind)
        ]


class ScalingCoordinator:
    """Admits and retires workers by driving fluid migrations."""

    def __init__(
        self,
        runtime,
        op,
        directory: MembershipDirectory,
        source,
        controller_factory: Callable,
        strategy: str = "fluid",
        batch_size: int = 16,
        telemetry=None,
        ledger=None,
    ) -> None:
        self._runtime = runtime
        self._op = op
        self._directory = directory
        self._source = source
        self._factory = controller_factory
        self._strategy = strategy
        self._batch_size = batch_size
        self._telemetry = telemetry
        self._ledger = ledger
        self._current = ledger.current if ledger is not None else op.config.initial
        self.busy = False
        self.report = ScalingReport()
        self.controllers: list = []

    @property
    def current(self):
        """The configuration the control stream has converged to."""
        if self._ledger is not None:
            return self._ledger.current
        return self._current

    # -- request entry points (safe to call from scheduled events) -------------

    def request_join(self, workers: tuple) -> None:
        """Scale out to include ``workers``; defers while another op runs."""
        if self.busy:
            self._runtime.sim.schedule(
                _BUSY_RETRY_S, lambda: self.request_join(workers)
            )
            return
        self.scale_out(workers)

    def request_leave(self, workers: tuple) -> None:
        """Scale in by draining ``workers``; defers while another op runs."""
        if self.busy:
            self._runtime.sim.schedule(
                _BUSY_RETRY_S, lambda: self.request_leave(workers)
            )
            return
        self.scale_in(workers)

    # -- join protocol ---------------------------------------------------------

    def scale_out(self, workers: tuple) -> None:
        """Admit ``workers`` (standby slots) into the active set."""
        if self.busy:
            raise MembershipError("a scaling operation is already in flight")
        workers = tuple(sorted(workers))
        for w in workers:
            self._directory.mark_joining(w)
            self._source.open_worker(w)
        target_range = max(self._directory.active() + workers) + 1
        current = self.current
        target = spread_target(current, self._bin_load(), num_workers=target_range)
        moves = len(current.moved_bins(target))
        sim = self._runtime.sim
        started_at = sim.now
        record = ScalingOp(
            kind="join", workers=workers, started_at=started_at, moves=moves
        )
        self.report.operations.append(record)
        if sim.trace.wants_membership:
            sim.trace.publish(
                ScaleOutStarted(
                    workers=workers,
                    target_active=len(self._directory.active()) + len(workers),
                    moves=moves,
                    at=started_at,
                )
            )
        self.busy = True

        def done(_result) -> None:
            self._settle(target)
            for w in workers:
                self._directory.mark_active(w)
            record.completed_at = sim.now
            if sim.trace.wants_membership:
                sim.trace.publish(
                    ScaleOutCompleted(
                        workers=workers,
                        active=len(self._directory.active()),
                        duration_s=record.duration_s,
                        at=sim.now,
                    )
                )
            self.busy = False

        self._launch(current, target, done)

    # -- drain protocol --------------------------------------------------------

    def scale_in(self, workers: tuple) -> None:
        """Evacuate and retire ``workers`` (currently active slots)."""
        if self.busy:
            raise MembershipError("a scaling operation is already in flight")
        workers = tuple(sorted(workers))
        if 0 in workers:
            raise MembershipError(
                "worker 0 cannot leave (it carries the control stream)"
            )
        survivors = set(self._directory.active()) - set(workers)
        if not survivors:
            raise MembershipError("cannot drain every active worker")
        for w in workers:
            self._directory.mark_draining(w)
            # Stop feeding the evacuee; its handle stays open (and keeps
            # advancing) until the drain migration completes.
            self._source.remove_worker(w)
        current = self.current
        target = drain_target(
            current,
            self._bin_load(),
            drain_workers=workers,
            num_workers=self._directory.num_workers,
        )
        moves = len(current.moved_bins(target))
        sim = self._runtime.sim
        started_at = sim.now
        record = ScalingOp(
            kind="drain", workers=workers, started_at=started_at, moves=moves
        )
        self.report.operations.append(record)
        if sim.trace.wants_membership:
            sim.trace.publish(
                DrainStarted(
                    workers=workers,
                    target_active=len(survivors),
                    moves=moves,
                    at=started_at,
                )
            )
        self.busy = True

        def done(_result) -> None:
            self._settle(target)
            # The evacuees must be empty before their handles close: count
            # bins still resident (a never-materialized store counts as
            # empty — the worker was never touched).
            residual = sum(
                len(store.resident_bins())
                for _w, store in self._op.stores(self._runtime, workers=workers)
            )
            record.residual_bins = residual
            handles = self._source.group.handles()
            for w in workers:
                handles[w].close()
                self._directory.mark_retired(w)
            record.completed_at = sim.now
            if sim.trace.wants_membership:
                sim.trace.publish(
                    DrainCompleted(
                        workers=workers,
                        active=len(self._directory.active()),
                        residual_bins=residual,
                        duration_s=record.duration_s,
                        at=sim.now,
                    )
                )
            self.busy = False

        self._launch(current, target, done)

    # -- shared plumbing -------------------------------------------------------

    def _launch(self, current, target, done: Callable) -> None:
        if current == target:
            done(None)
            return
        plan = make_plan(self._strategy, current, target, self._batch_size)
        controller = self._factory(plan, done)
        self.controllers.append(controller)
        controller.start_at(self._runtime.sim.now)

    def _settle(self, target) -> None:
        """Adopt the converged configuration after a migration."""
        if self._ledger is None:
            self._current = target
        # With a ledger, every issued step was already applied to it (the
        # resilient controller does so inst by inst, retargets included).

    def _bin_load(self) -> dict:
        """Per-bin heat for target search; uniform before telemetry warms."""
        load: dict = {}
        if self._telemetry is not None:
            load = self._telemetry.bin_load()
        if not load or not any(load.values()):
            load = {b: 1.0 for b in range(self.current.num_bins)}
        return load
