"""One home for every on-disk format version the reproduction writes.

The repo emits several durable artifacts — migration plans (plan_io),
hot-path bench reports, the experiment-matrix report, and the obsv event
log.  Each format carries a version so readers can refuse documents they
cannot faithfully interpret; before this module those constants were
scattered across the writers, which made "can this build replay that
log?" unanswerable in one place.

Two version styles coexist, for compatibility with what is already
checked in:

* integer versions (plan_io documents: ``{"version": 2, ...}``),
* schema tags (report files: ``{"schema": "bench-hotpath/2", ...}``),
  parsed by :func:`parse_schema` into a ``(family, version)`` pair.

A reader accepts a document when its version is listed in the matching
``*_READ_VERSIONS`` tuple.  Replay is the strictest consumer: an event
log whose version is not in :data:`EVENT_LOG_READ_VERSIONS` must be
rejected outright, because re-executing it under different semantics
would "verify" a fingerprint the original run never produced.
"""

from __future__ import annotations

# -- migration plans (repro.megaphone.plan_io) ----------------------------------
# Version 2 added the optional ``provenance`` block; provenance-less
# documents are still written as version 1 so older readers accept them.
PLAN_FORMAT_VERSION = 2
PLAN_READ_VERSIONS = (1, 2)

# -- hot-path bench reports (repro.perf.hotpath) --------------------------------
# bench-hotpath/2 added the ``machine`` metadata block that powers the
# cross-machine warning downgrade in ``bench --check``.
BENCH_SCHEMA_FAMILY = "bench-hotpath"
BENCH_SCHEMA_VERSION = 2
BENCH_SCHEMA = f"{BENCH_SCHEMA_FAMILY}/{BENCH_SCHEMA_VERSION}"
BENCH_READ_VERSIONS = (1, 2)

# -- experiment-matrix reports (repro.obsv.matrix) ------------------------------
MATRIX_SCHEMA_FAMILY = "bench-matrix"
MATRIX_SCHEMA_VERSION = 1
MATRIX_SCHEMA = f"{MATRIX_SCHEMA_FAMILY}/{MATRIX_SCHEMA_VERSION}"
MATRIX_READ_VERSIONS = (1,)

# -- obsv event logs (repro.obsv.eventlog) --------------------------------------
# v2 added the elastic-membership provenance (active_workers, scaling_plan,
# autoscale config fields) and the ``membership`` trace topic.  v1 logs
# (no membership changes possible) replay unchanged.
EVENT_LOG_VERSION = 2
EVENT_LOG_READ_VERSIONS = (1, 2)


def parse_schema(tag: str) -> tuple[str, int]:
    """Split a ``"family/N"`` schema tag into ``(family, N)``.

    Raises ``ValueError`` for anything that is not exactly one family name,
    one slash, and one integer — a mangled tag must not parse as "version
    0 of something".
    """
    if not isinstance(tag, str):
        raise ValueError(f"schema tag must be a string, got {type(tag).__name__}")
    family, sep, version = tag.rpartition("/")
    if not sep or not family:
        raise ValueError(f"malformed schema tag {tag!r}; expected 'family/N'")
    try:
        number = int(version)
    except ValueError:
        raise ValueError(
            f"malformed schema tag {tag!r}; version {version!r} is not an integer"
        ) from None
    return family, number


def check_schema(tag: str, family: str, read_versions: tuple) -> int:
    """Validate ``tag`` against a family and its readable versions.

    Returns the parsed version on success; raises ``ValueError`` naming
    the family and the versions this build can read otherwise.
    """
    got_family, version = parse_schema(tag)
    if got_family != family:
        raise ValueError(
            f"schema {tag!r} is not a {family!r} document"
        )
    if version not in read_versions:
        raise ValueError(
            f"unsupported {family} version {version} "
            f"(this build reads versions {read_versions})"
        )
    return version
