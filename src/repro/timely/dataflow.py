"""High-level dataflow construction and the runtime coordinator.

``Dataflow`` is the user-facing builder: create inputs, derive streams with
operators, attach probes, then ``build()`` a ``Runtime`` and drive the
simulation.  The ``Runtime`` owns the progress tracker, the per-worker
runtimes, probes, and the watch table that lets Megaphone's F operators react
to the output frontier of their S operators.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.runtime_events.events import FrontierAdvanced
from repro.sim.engine import Simulator
from repro.sim.network import Cluster
from repro.timely.graph import ChannelDesc, GraphBuilder, Pact
from repro.timely.probe import Probe
from repro.timely.progress import ProgressTracker
from repro.timely.timestamp import Timestamp, less_equal
from repro.timely.worker import WorkerRuntime


class Stream:
    """A logical stream of timestamped records: one operator output port."""

    def __init__(self, dataflow: "Dataflow", op_index: int, port: int = 0) -> None:
        self.dataflow = dataflow
        self.op_index = op_index
        self.port = port

    # Operator-attaching helpers live in repro.timely.operators and are
    # grafted onto Stream at import time to avoid a circular import; see
    # that module for map/filter/exchange/unary/binary/... combinators.


class InputHandle:
    """One worker's handle to a source operator.

    The open-loop harness drives these: ``send`` injects a batch at a
    timestamp, ``advance_to`` downgrades the source capability (the promise
    about the smallest future timestamp), ``close`` drops it.
    """

    def __init__(
        self,
        runtime: "Runtime",
        op_index: int,
        worker_id: int,
        initial_timestamp: Timestamp = 0,
    ) -> None:
        self._runtime = runtime
        self._op_index = op_index
        self._worker_id = worker_id
        self.epoch: Optional[Timestamp] = initial_timestamp

    def send(self, time: Timestamp, records: list) -> None:
        """Inject ``records`` at ``time`` (must be >= the current epoch)."""
        if self.epoch is None:
            raise RuntimeError("input already closed")
        if not less_equal(self.epoch, time):
            raise ValueError(
                f"cannot send at {time!r}: epoch already advanced to {self.epoch!r}"
            )
        tracker = self._runtime.tracker
        tracker.capability_update(self._op_index, time, +1)
        self._runtime.workers[self._worker_id].enqueue_source(
            self._op_index, time, records
        )
        self._runtime.mark_progress()

    def advance_to(self, time: Timestamp) -> None:
        """Promise that no future record will carry a timestamp < ``time``."""
        if self.epoch is None:
            raise RuntimeError("input already closed")
        if not less_equal(self.epoch, time):
            raise ValueError(
                f"cannot advance to {time!r}: epoch already at {self.epoch!r}"
            )
        if time == self.epoch:
            return
        tracker = self._runtime.tracker
        tracker.capability_update(self._op_index, time, +1)
        tracker.capability_update(self._op_index, self.epoch, -1)
        self.epoch = time
        self._runtime.mark_progress()

    def close(self) -> None:
        """Drop the source capability; the stream will drain and complete."""
        if self.epoch is None:
            return
        self._runtime.tracker.capability_update(self._op_index, self.epoch, -1)
        self.epoch = None
        self._runtime.mark_progress()


class _SourceLogic:
    """Placeholder logic for source operators (driven by InputHandle)."""


class Dataflow:
    """Builder for a simulated timely dataflow computation."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.graph = GraphBuilder()
        self._input_groups: list["InputGroup"] = []
        self._probe_requests: list["ProbeHandle"] = []
        self._pending_watches: list[tuple[int, int]] = []
        self._runtime: Optional["Runtime"] = None

    @property
    def num_workers(self) -> int:
        """Workers in the underlying cluster."""
        return self.cluster.num_workers

    def new_input(
        self, name: str = "input", initial_timestamp: Timestamp = 0
    ) -> tuple[Stream, "InputGroup"]:
        """Create a source operator; returns its stream and input handles.

        ``initial_timestamp`` sets the timestamp shape: pass a tuple minimum
        (e.g. ``(0, 0)``) for product-timestamp streams.
        """
        desc = self.graph.add_operator(
            name=name,
            n_inputs=0,
            n_outputs=1,
            logic_factory=lambda worker_id: _SourceLogic(),
            is_source=True,
            initial_timestamp=initial_timestamp,
        )
        group = InputGroup(self, desc.index)
        self._input_groups.append(group)
        return Stream(self, desc.index, 0), group

    def add_operator(
        self,
        name: str,
        inputs: list[tuple[Stream, Pact]],
        n_outputs: int,
        logic_factory: Callable[[int], object],
    ) -> list[Stream]:
        """Attach an operator consuming ``inputs``; returns its output streams."""
        desc = self.graph.add_operator(
            name=name,
            n_inputs=len(inputs),
            n_outputs=n_outputs,
            logic_factory=logic_factory,
        )
        for port, (stream, pact) in enumerate(inputs):
            self.graph.connect(
                stream.op_index, stream.port, desc.index, port, pact
            )
        return [Stream(self, desc.index, p) for p in range(n_outputs)]

    def probe(self, stream: Stream) -> "ProbeHandle":
        """Request a probe on ``stream`` (resolved at build time)."""
        handle = ProbeHandle(stream.op_index)
        self._probe_requests.append(handle)
        return handle

    def watch_output(self, watched_op: int, dependent_op: int) -> None:
        """Arrange frontier callbacks for ``dependent_op`` whenever
        ``watched_op``'s output frontier changes (registered at build)."""
        self._pending_watches.append((watched_op, dependent_op))

    def build(
        self,
        batches_per_activation: int = 1,
        runtime_factory: Optional[Callable[..., "Runtime"]] = None,
    ) -> "Runtime":
        """Freeze the graph and construct the runtime.

        ``runtime_factory`` (a :class:`Runtime` subclass, e.g. the sharded
        domain runtime) substitutes the coordinator implementation without
        changing the graph.
        """
        if self._runtime is not None:
            raise RuntimeError("dataflow already built")
        factory = runtime_factory if runtime_factory is not None else Runtime
        runtime = factory(self, batches_per_activation)
        self._runtime = runtime
        for handle in self._probe_requests:
            handle._resolve(runtime.register_probe(handle.op_index))
        return runtime


class InputGroup:
    """All workers' input handles for one source operator."""

    def __init__(self, dataflow: Dataflow, op_index: int) -> None:
        self._dataflow = dataflow
        self.op_index = op_index
        self._handles: Optional[list[InputHandle]] = None

    def _resolve(self, runtime: "Runtime") -> None:
        initial = runtime.graph.operators[self.op_index].initial_timestamp
        self._handles = [
            InputHandle(runtime, self.op_index, w, initial_timestamp=initial)
            for w in range(runtime.num_workers)
        ]

    def handle(self, worker_id: int) -> InputHandle:
        """The handle owned by ``worker_id``."""
        if self._handles is None:
            raise RuntimeError("dataflow not built yet")
        return self._handles[worker_id]

    def handles(self) -> list[InputHandle]:
        """All per-worker handles."""
        if self._handles is None:
            raise RuntimeError("dataflow not built yet")
        return list(self._handles)

    def send_to(self, worker_id: int, time: Timestamp, records: list) -> None:
        """Convenience: send from one worker's handle."""
        self.handle(worker_id).send(time, records)

    def advance_all(self, time: Timestamp) -> None:
        """Advance every worker's epoch to ``time``."""
        for handle in self.handles():
            handle.advance_to(time)

    def close_all(self) -> None:
        """Close every worker's handle."""
        for handle in self.handles():
            handle.close()


class ProbeHandle:
    """Deferred probe: usable once the dataflow is built."""

    def __init__(self, op_index: int) -> None:
        self.op_index = op_index
        self._probe: Optional[Probe] = None

    def _resolve(self, probe: Probe) -> None:
        self._probe = probe

    def __getattr__(self, item):
        if self._probe is None:
            raise RuntimeError("dataflow not built yet")
        return getattr(self._probe, item)


class Runtime:
    """Executes a built dataflow on the simulated cluster."""

    def __init__(self, dataflow: Dataflow, batches_per_activation: int = 1) -> None:
        self.dataflow = dataflow
        self.cluster = dataflow.cluster
        self.sim: Simulator = dataflow.cluster.sim
        self.graph = dataflow.graph
        self.num_workers = dataflow.cluster.num_workers
        self.batches_per_activation = batches_per_activation
        self.tracker = self._make_tracker()
        self.workers: list[WorkerRuntime] = [
            self._make_worker(w) for w in range(self.num_workers)
        ]
        self._channels_from: dict[tuple[int, int], list[ChannelDesc]] = {}
        for channel in self.graph.channels:
            self._channels_from.setdefault(
                (channel.src_op, channel.src_port), []
            ).append(channel)
        self._probes: dict[int, list[Probe]] = {}
        self._watches: dict[int, set[int]] = {}
        self._frontier_interested: set[int] = set()
        self._progress_scheduled = False

        self._install_operators()

        for group in dataflow._input_groups:
            group._resolve(self)
        for watched_op, dependent_op in dataflow._pending_watches:
            self.watch_output(watched_op, dependent_op)

    # -- construction hooks (overridden by the sharded domain runtime) -------

    def _make_tracker(self) -> ProgressTracker:
        return ProgressTracker(self.graph)

    def _make_worker(self, worker_id: int) -> WorkerRuntime:
        return WorkerRuntime(self, worker_id)

    def _install_operators(self) -> None:
        for desc in self.graph.operators:
            for worker in self.workers:
                logic = desc.logic_factory(worker.worker_id)
                worker.install(desc, logic)
                if hasattr(logic, "on_frontier") or hasattr(logic, "on_notify"):
                    self._frontier_interested.add(desc.index)
            if desc.is_source:
                for worker in self.workers:
                    self.tracker.capability_update(
                        desc.index, desc.initial_timestamp, +1
                    )

    # -- registration --------------------------------------------------------

    def register_probe(self, op_index: int) -> Probe:
        """Create a probe on ``op_index``'s output frontier."""
        probe = Probe(self, op_index)
        self._probes.setdefault(op_index, []).append(probe)
        return probe

    def watch_output(self, watched_op: int, dependent_op: int) -> None:
        """Deliver frontier callbacks to ``dependent_op`` whenever
        ``watched_op``'s output frontier changes (Megaphone F watching S)."""
        self._watches.setdefault(watched_op, set()).add(dependent_op)
        self._frontier_interested.add(dependent_op)

    def channels_from(self, op_index: int, port: int) -> list[ChannelDesc]:
        """Outgoing channels of an output port."""
        return self._channels_from.get((op_index, port), [])

    def logic_of(self, worker_id: int, op_index: int):
        """The logic instance of an operator on a worker (for tests/bins)."""
        return self.workers[worker_id].logics[op_index]

    # -- progress pump ---------------------------------------------------------

    def mark_progress(self) -> None:
        """Schedule a progress propagation step if updates are outstanding."""
        if self._progress_scheduled:
            return
        tracker = self.tracker
        # ``tracker.has_updates`` inlined: this guard runs several times per
        # activation and the property call was measurable.
        if not (
            tracker._dirty or tracker._pending_inputs or tracker._pending_outputs
        ):
            return
        self._progress_scheduled = True
        sim = self.sim
        sim.schedule_fast_at(sim.now, self._progress_step)

    def _progress_step(self) -> None:
        self._progress_scheduled = False
        changes = self.tracker.drain_changes()
        if not changes:
            return
        to_note: set[int] = set()
        for change in changes.inputs:
            if change.op in self._frontier_interested:
                to_note.add(change.op)
        for op_index in changes.outputs:
            for dependent in self._watches.get(op_index, ()):
                to_note.add(dependent)
        for op_index in to_note:
            for worker in self.workers:
                worker.note_frontier(op_index)
        trace = self.sim.trace
        for op_index in changes.outputs:
            frontier = self.tracker.output_frontier(op_index)
            if trace.wants_frontier:
                trace.publish(
                    FrontierAdvanced(op=op_index, frontier=frontier, at=self.sim.now)
                )
            for probe in self._probes.get(op_index, ()):
                probe._fire(frontier)
        # Callbacks (probe controllers) may have injected new updates.
        self.mark_progress()

    # -- driving ----------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation (and the dataflow with it)."""
        self.sim.run(until=until)

    def run_to_quiescence(self, max_events: int = 50_000_000) -> None:
        """Run until no events remain; asserts the dataflow drained."""
        self.sim.run(max_events=max_events)
        if self.sim.peek_time() is not None:
            raise RuntimeError("simulation did not quiesce within max_events")

    def idle(self) -> bool:
        """True when no progress or queued work remains anywhere."""
        return self.tracker.idle() and not any(
            w.has_pending_work() for w in self.workers
        )
