"""Antichains and counted (mutable) antichains.

A frontier (paper Definition 1) is an antichain: a set of mutually
incomparable timestamps such that every message still in flight is in advance
of some element.  ``Antichain`` is the immutable-ish set; ``MutableAntichain``
tracks a multiset of timestamps with occurrence counts and incrementally
maintains the antichain of its minimal elements, which is how progress
tracking represents capabilities and in-flight message times.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Optional

from repro.timely.timestamp import Timestamp, less_equal, less_than


class Antichain:
    """A minimal set of mutually incomparable timestamps.

    The empty antichain means "nothing can ever arrive" (a closed frontier).
    """

    __slots__ = ("_elements",)

    def __init__(self, elements: Iterable[Timestamp] = ()) -> None:
        self._elements: list[Timestamp] = []
        for element in elements:
            self.insert(element)

    def insert(self, time: Timestamp) -> bool:
        """Insert ``time`` unless an existing element is <= it.

        Removes any existing elements dominated by ``time``.  Returns True
        when the element was inserted.
        """
        for existing in self._elements:
            if less_equal(existing, time):
                return False
        self._elements = [e for e in self._elements if not less_equal(time, e)]
        self._elements.append(time)
        return True

    def less_equal(self, time: Timestamp) -> bool:
        """Is ``time`` in advance of this frontier (some element <= time)?"""
        return any(less_equal(e, time) for e in self._elements)

    def less_than(self, time: Timestamp) -> bool:
        """Is some element strictly less than ``time``?"""
        return any(less_than(e, time) for e in self._elements)

    def dominates(self, other: "Antichain") -> bool:
        """True when every element of ``other`` is in advance of self."""
        return all(self.less_equal(t) for t in other)

    def elements(self) -> list[Timestamp]:
        """The antichain's elements (copy)."""
        return list(self._elements)

    def is_empty(self) -> bool:
        """True when the frontier is closed (no timestamps remain)."""
        return not self._elements

    def __iter__(self) -> Iterator[Timestamp]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, time: Timestamp) -> bool:
        return time in self._elements

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Antichain):
            return NotImplemented
        mine, theirs = self._elements, other._elements
        if len(mine) != len(theirs):
            return False
        if not mine:
            return True
        if len(mine) == 1:
            return mine[0] == theirs[0]
        return sorted(map(repr, mine)) == sorted(map(repr, theirs))

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key in hot paths
        return hash(tuple(sorted(map(repr, self._elements))))

    def __repr__(self) -> str:
        return f"Antichain({sorted(map(repr, self._elements))})"


class MutableAntichain:
    """A multiset of timestamps exposing the antichain of its minima.

    ``update`` adjusts occurrence counts; the ``frontier`` is recomputed
    from live elements when counts change at or below it.  Counts must never
    go negative — that indicates a progress-tracking accounting bug, and we
    fail loudly.
    """

    __slots__ = ("_counts", "_frontier")

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self._frontier: Optional[Antichain] = Antichain()

    def update(self, time: Timestamp, delta: int) -> bool:
        """Adjust the count of ``time`` by ``delta``.

        Returns True when the frontier may have changed (callers may then
        re-read ``frontier()``).  When the count merely moves between two
        positive values the set of live timestamps — and therefore the
        frontier — is unchanged, so the cached frontier is kept and False
        is returned.
        """
        if delta == 0:
            return False
        old_count = self._counts[time]
        new_count = old_count + delta
        if new_count < 0:
            raise ValueError(
                f"count for {time!r} would become negative ({new_count}); "
                "progress accounting is corrupted"
            )
        if new_count == 0:
            del self._counts[time]
        else:
            self._counts[time] = new_count
            if old_count > 0:
                return False
        self._frontier = None
        return True

    def frontier(self) -> Antichain:
        """Antichain of minimal live timestamps."""
        if self._frontier is None:
            frontier = Antichain()
            for time in self._counts:
                frontier.insert(time)
            self._frontier = frontier
        return self._frontier

    def count(self, time: Timestamp) -> int:
        """Occurrence count of ``time``."""
        return self._counts.get(time, 0)

    def is_empty(self) -> bool:
        """True when no timestamps are live."""
        return not self._counts

    def total(self) -> int:
        """Total number of live occurrences."""
        return sum(self._counts.values())

    def times(self) -> list[Timestamp]:
        """All live timestamps (unordered copy)."""
        return list(self._counts)

    def __repr__(self) -> str:
        return f"MutableAntichain({dict(self._counts)!r})"
