"""Per-worker execution: activations, queues, operator contexts.

Each worker is a simulated thread.  It keeps a FIFO of deliverable work
(message batches and source emissions), a set of operators whose frontiers
changed since their last activation, and a ``busy_until`` clock.  An
*activation* is one simulated scheduling quantum: the worker delivers
frontier callbacks and due notifications, processes a bounded number of
queued batches, charges the modeled CPU cost, and emits any buffered sends
at the activation's completion time.

Progress-accounting discipline (what makes frontiers conservative and
therefore correct):

* in-flight counts are incremented the moment an operator *decides* to send
  (even though bytes leave later), and decremented only once the receiving
  activation's CPU work has completed (``busy_until``) — so backlog holds
  frontiers back and is visible as latency;
* notification requests and held capabilities are registered while the
  triggering batch is still counted, so a published frontier can never
  regress;
* a transient "send guard" capability covers each buffered send until the
  flush has charged its in-flight counts, closing the window between a
  send decision and its accounting.

Work items and buffered sends are the typed carriers from
:mod:`repro.runtime_events.items`; scheduling quanta, batch deliveries,
send flushes, and capability movements publish structured trace events when
the simulator's bus has subscribers for the matching topics.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.runtime_events.events import (
    ActivationBegin,
    ActivationEnd,
    BatchDelivered,
    CapabilityDropped,
    CapabilityHeld,
    MessageDropped,
    SendFlushed,
)
from repro.runtime_events.items import (
    BufferedSend,
    ChannelPayload,
    MessageWork,
    RoutedSend,
    SourceWork,
    batch_record_count,
)
from repro.sim.network import NetworkMessage
from repro.timely.antichain import Antichain
from repro.timely.graph import (
    Broadcast,
    ChannelDesc,
    GroupedExchange,
    OperatorDesc,
    Pipeline,
)
from repro.timely.timestamp import Timestamp, less_equal

if TYPE_CHECKING:  # pragma: no cover
    from repro.timely.dataflow import Runtime


def _time_sort_key(time: Timestamp):
    """Linear extension used to deliver notifications deterministically."""
    if isinstance(time, tuple):
        return (1, time)
    return (0, (time,))


class OpContext:
    """The handle an operator's logic uses to interact with the runtime.

    One context exists per (worker, operator) pair and lives for the whole
    computation.
    """

    __slots__ = (
        "_runtime",
        "_worker",
        "_desc",
        "_send_buffer",
        "_notify_heap",
        "_notify_pending",
        "_held_capabilities",
        "_current_batch_time",
        "_extra_cost",
    )

    def __init__(self, runtime: "Runtime", worker: "WorkerRuntime", desc: OperatorDesc):
        self._runtime = runtime
        self._worker = worker
        self._desc = desc
        self._send_buffer: list[BufferedSend] = []
        self._notify_heap: list[tuple] = []
        self._notify_pending: set[Timestamp] = set()
        self._held_capabilities: dict[Timestamp, int] = {}
        self._current_batch_time: Optional[Timestamp] = None
        self._extra_cost = 0.0

    # -- identity ----------------------------------------------------------

    @property
    def worker_id(self) -> int:
        """Id of the worker executing this operator instance."""
        return self._worker.worker_id

    @property
    def num_workers(self) -> int:
        """Total workers in the cluster."""
        return self._runtime.num_workers

    @property
    def op_index(self) -> int:
        """Index of this operator in the dataflow graph."""
        return self._desc.index

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._runtime.sim.now

    @property
    def cost(self):
        """The cluster's cost model."""
        return self._runtime.cluster.cost

    @property
    def memory(self):
        """Memory model of the process hosting this worker."""
        return self._runtime.cluster.process_of(self.worker_id).memory

    @property
    def trace(self):
        """The simulator's trace bus (for operator-level publishers)."""
        return self._runtime.sim.trace

    @property
    def shared(self) -> dict:
        """Per-worker dictionary shared by all operators on this worker.

        Megaphone's F and S exchange a pointer to the bin state through this
        (paper §4.2: "F can obtain a reference to bins by means of a shared
        pointer", possible because both run on the same worker).
        """
        return self._worker.shared

    # -- output ------------------------------------------------------------

    def send(
        self,
        port: int,
        time: Timestamp,
        records: list,
        size_bytes: Optional[float] = None,
        retained_bytes: float = 0.0,
    ) -> None:
        """Emit ``records`` at ``time`` on output ``port``.

        The send must be justified by a held capability, the batch currently
        being processed, or the operator's output frontier; otherwise the
        operator could violate its published progress statements, and we
        fail loudly instead.

        ``retained_bytes`` is sender memory pinned until the network drains
        the message (the cluster releases it from the process's retained
        pool at transmit-complete).
        """
        if not self._can_send_at(time):
            raise RuntimeError(
                f"operator {self._desc.name!r} (worker {self.worker_id}) "
                f"attempted to send at {time!r} without a justifying capability"
            )
        # Guard the send with a transient capability until the flush has
        # charged the in-flight counts; otherwise releasing the justifying
        # capability between the send decision and the flush could let the
        # frontier advance past the outgoing batch.
        self._runtime.tracker.capability_update(self._desc.index, time, +1)
        self._send_buffer.append(
            BufferedSend(
                port=port,
                time=time,
                records=records,
                size_bytes=size_bytes,
                retained_bytes=retained_bytes,
            )
        )

    def _can_send_at(self, time: Timestamp) -> bool:
        if self._current_batch_time is not None and less_equal(
            self._current_batch_time, time
        ):
            return True
        for held in self._held_capabilities:
            if less_equal(held, time):
                return True
        return self._runtime.tracker.output_frontier(self._desc.index).less_equal(time)

    # -- notifications and capabilities -------------------------------------

    def notify_at(self, time: Timestamp) -> None:
        """Request a notification once the input frontiers pass ``time``.

        Holds a capability at ``time`` so downstream frontiers cannot
        overtake the pending work.  Duplicate requests coalesce.
        """
        if time in self._notify_pending:
            return
        if not self._can_send_at(time):
            raise RuntimeError(
                f"operator {self._desc.name!r} cannot request notification at "
                f"{time!r}: time already passed"
            )
        self._notify_pending.add(time)
        heapq.heappush(self._notify_heap, (_time_sort_key(time), time))
        self._runtime.tracker.capability_update(self._desc.index, time, +1)
        # The request may already be satisfiable (e.g. registered from a
        # notification after the inputs closed); without another frontier
        # movement nobody would re-activate us, so ask for a delivery pass.
        self._worker.note_frontier(self._desc.index)

    def hold_capability(self, time: Timestamp) -> None:
        """Explicitly retain the right to send at ``time`` (and later)."""
        if not self._can_send_at(time):
            raise RuntimeError(
                f"operator {self._desc.name!r} cannot hold capability at "
                f"{time!r}: time already passed"
            )
        self._held_capabilities[time] = self._held_capabilities.get(time, 0) + 1
        self._runtime.tracker.capability_update(self._desc.index, time, +1)
        trace = self._runtime.sim.trace
        if trace.wants_capability:
            trace.publish(
                CapabilityHeld(
                    worker=self.worker_id,
                    op=self._desc.index,
                    time=time,
                    at=self._runtime.sim.now,
                )
            )

    def release_capability(self, time: Timestamp) -> None:
        """Release one previously held capability at ``time``."""
        count = self._held_capabilities.get(time, 0)
        if count <= 0:
            raise RuntimeError(
                f"operator {self._desc.name!r} released capability at {time!r} "
                "it does not hold"
            )
        if count == 1:
            del self._held_capabilities[time]
        else:
            self._held_capabilities[time] = count - 1
        self._runtime.tracker.capability_update(self._desc.index, time, -1)
        trace = self._runtime.sim.trace
        if trace.wants_capability:
            trace.publish(
                CapabilityDropped(
                    worker=self.worker_id,
                    op=self._desc.index,
                    time=time,
                    at=self._runtime.sim.now,
                )
            )

    def held_capabilities(self) -> list[Timestamp]:
        """Times at which this instance explicitly holds capabilities."""
        return list(self._held_capabilities)

    # -- frontier queries ----------------------------------------------------

    def input_frontier(self, port: int = 0) -> Antichain:
        """Frontier of this operator's input ``port``."""
        return self._runtime.tracker.input_frontier(self._desc.index, port)

    def output_frontier_of(self, op_index: int) -> Antichain:
        """Output frontier of an arbitrary operator (probe semantics)."""
        return self._runtime.tracker.output_frontier(op_index)

    def all_inputs_passed(self, time: Timestamp) -> bool:
        """True when no input can still deliver a message <= ``time``."""
        for port in range(self._desc.n_inputs):
            if self.input_frontier(port).less_equal(time):
                return False
        return True

    # -- cost ---------------------------------------------------------------

    def charge(self, seconds: float) -> None:
        """Charge extra CPU seconds to the current activation."""
        if seconds < 0:
            raise ValueError("cannot charge negative cost")
        self._extra_cost += seconds

    # -- used by the worker loop ---------------------------------------------

    def _pop_due_notification(self) -> Optional[Timestamp]:
        """Earliest deliverable notification, or None.

        Must be re-evaluated after every delivery: a callback may register
        an *earlier* (already due) time than the next pending one, and
        notifications must fire in time order.
        """
        if self._notify_heap:
            _, time = self._notify_heap[0]
            if self.all_inputs_passed(time):
                heapq.heappop(self._notify_heap)
                self._notify_pending.discard(time)
                return time
        return None

    def _take_sends(self) -> list[BufferedSend]:
        sends = self._send_buffer
        self._send_buffer = []
        return sends

    def _take_extra_cost(self) -> float:
        cost = self._extra_cost
        self._extra_cost = 0.0
        return cost


class WorkerRuntime:
    """One simulated worker thread executing all operator instances."""

    __slots__ = (
        "_runtime",
        "worker_id",
        "shared",
        "contexts",
        "logics",
        "_on_input",
        "_on_frontier",
        "_on_notify",
        "_input_cost",
        "_work",
        "_frontier_pending",
        "_busy_until",
        "_activation_scheduled",
        "alive",
        "chaos",
    )

    def __init__(self, runtime: "Runtime", worker_id: int):
        self._runtime = runtime
        self.worker_id = worker_id
        self.shared: dict = {}
        self.contexts: list[OpContext] = []
        self.logics: list[object] = []
        # Hook tables populated once at install() — per-activation getattr
        # on logic objects is measurable on the hot path.
        self._on_input: list[Optional[Callable]] = []
        self._on_frontier: list[Optional[Callable]] = []
        self._on_notify: list[Optional[Callable]] = []
        self._input_cost: list[Optional[Callable]] = []
        self._work: deque = deque()
        self._frontier_pending: set[int] = set()
        self._busy_until = 0.0
        self._activation_scheduled = False
        # Fault injection: a dead worker drops arriving work (with progress
        # compensation) and never activates; ``chaos`` (set by the injector)
        # supplies stall windows and slowdown factors.  ``None`` means the
        # hooks cost nothing — the no-chaos path is bit-identical.
        self.alive = True
        self.chaos = None

    @property
    def busy_until(self) -> float:
        """Simulated time at which current CPU work completes."""
        return self._busy_until

    def install(self, desc: OperatorDesc, logic: object) -> OpContext:
        """Create the context for ``desc``, remember its logic, and cache
        its optional hook methods."""
        assert desc.index == len(self.contexts)
        ctx = OpContext(self._runtime, self, desc)
        self.contexts.append(ctx)
        self.logics.append(logic)
        self._on_input.append(getattr(logic, "on_input", None))
        self._on_frontier.append(getattr(logic, "on_frontier", None))
        self._on_notify.append(getattr(logic, "on_notify", None))
        self._input_cost.append(getattr(logic, "input_cost", None))
        return ctx

    # -- work intake -----------------------------------------------------------

    def enqueue_message(
        self, channel: ChannelDesc, time: Timestamp, records: list, size_bytes: float
    ) -> None:
        """A batch arrived on ``channel`` for this worker.

        A dead (crashed) worker loses the batch: the channel's in-flight
        count is consumed immediately so the frontier does not wait forever
        on a delivery nobody will process.
        """
        if not self.alive:
            self._drop_arrival(channel.index, time, size_bytes, is_message=True)
            return
        self._work.append(
            MessageWork(channel=channel, time=time, records=records, size_bytes=size_bytes)
        )
        self.activate()

    def enqueue_source(self, op_index: int, time: Timestamp, records: list) -> None:
        """The input handle of source ``op_index`` injected a batch."""
        if not self.alive:
            # Release the per-batch capability InputHandle.send registered.
            self._runtime.tracker.capability_update(op_index, time, -1)
            self._runtime.mark_progress()
            return
        self._work.append(SourceWork(op_index=op_index, time=time, records=records))
        self.activate()

    def _drop_arrival(
        self, channel_index: int, time: Timestamp, size_bytes: float, is_message: bool
    ) -> None:
        tracker = self._runtime.tracker
        if is_message:
            tracker.message_consumed(channel_index, time)
        trace = self._runtime.sim.trace
        if trace.wants_faults:
            trace.publish(
                MessageDropped(
                    src_worker=-1,
                    dst_worker=self.worker_id,
                    size_bytes=size_bytes,
                    reason="dead-worker",
                    at=self._runtime.sim.now,
                )
            )
        self._runtime.mark_progress()

    def note_frontier(self, op_index: int) -> None:
        """An input frontier of ``op_index`` changed; deliver on next activation."""
        if not self.alive:
            return
        self._frontier_pending.add(op_index)
        self.activate()

    def has_pending_work(self) -> bool:
        """True when batches or frontier callbacks await processing."""
        return bool(self._work) or bool(self._frontier_pending)

    # -- activation loop ---------------------------------------------------------

    def activate(self) -> None:
        """Ensure an activation is scheduled at the earliest legal time."""
        if self._activation_scheduled or not self.alive:
            return
        self._activation_scheduled = True
        sim = self._runtime.sim
        busy = self._busy_until
        at = sim.now if sim.now >= busy else busy
        sim.schedule_fast_at(at, self._run_activation)

    def _run_activation(self) -> None:
        self._activation_scheduled = False
        sim = self._runtime.sim
        if not self.alive:
            return
        if self.chaos is not None:
            stalled_until = self.chaos.stalled_until(self.worker_id)
            if stalled_until > sim.now:
                # Hard stall window: defer the whole activation to its end.
                self._activation_scheduled = True
                sim.schedule_fast_at(stalled_until, self._run_activation)
                return
        trace = sim.trace
        if trace.wants_activation:
            trace.publish(ActivationBegin(worker=self.worker_id, at=sim.now))
        busy = self._busy_until
        start = sim.now if sim.now >= busy else busy
        cost = 0.0
        sends: list[tuple[OpContext, BufferedSend]] = []
        # Progress *decrements* (consumed messages, released capabilities)
        # take effect when the CPU work completes, not when it starts —
        # otherwise frontiers would advance before the cost of advancing
        # them was paid, and backlog would be invisible to latency.  Each
        # entry is a ``(is_message, index, time)`` triple rather than a
        # closure: the dispatch in ``_complete`` is the same two tracker
        # calls, minus one lambda allocation per entry.
        deferred: list = []

        cost += self._deliver_frontiers(sends, deferred)

        batches = self._runtime.batches_per_activation
        processed = 0
        for _ in range(batches):
            if not self._work:
                break
            cost += self._process_one(self._work.popleft(), sends, deferred)
            processed += 1

        if self.chaos is not None:
            cost *= self.chaos.cost_multiplier(self.worker_id)
        self._busy_until = start + cost
        # One completion event covers both the network hand-off and the
        # deferred progress decrements (they fire back to back at
        # ``busy_until`` anyway); this halves the hot path's event volume.
        dispatch = self._flush_sends(sends) if sends else None
        if dispatch is not None or deferred:
            tracker = self._runtime.tracker

            def _complete() -> None:
                if dispatch is not None:
                    dispatch()
                if deferred:
                    for is_message, index, t in deferred:
                        if is_message:
                            tracker.message_consumed(index, t)
                        else:
                            tracker.capability_update(index, t, -1)
                    self._runtime.mark_progress()

            sim.schedule_fast_at(self._busy_until, _complete)
        if trace.wants_activation:
            trace.publish(
                ActivationEnd(
                    worker=self.worker_id,
                    start=start,
                    cost=cost,
                    busy_until=self._busy_until,
                    batches=processed,
                    at=sim.now,
                )
            )
        if self.has_pending_work():
            self.activate()
        self._runtime.mark_progress()

    def _deliver_frontiers(self, sends: list, deferred: list) -> float:
        if not self._frontier_pending:
            return 0.0
        cost = 0.0
        pending = sorted(self._frontier_pending)
        self._frontier_pending.clear()
        cost_model = self._runtime.cluster.cost
        for op_index in pending:
            ctx = self.contexts[op_index]
            on_frontier = self._on_frontier[op_index]
            if on_frontier is not None:
                on_frontier(ctx)
                cost += cost_model.progress_update_cost
            on_notify = self._on_notify[op_index]
            while True:
                time = ctx._pop_due_notification()
                if time is None:
                    break
                ctx._current_batch_time = time
                try:
                    if on_notify is not None:
                        on_notify(ctx, time)
                finally:
                    ctx._current_batch_time = None
                deferred.append((0, op_index, time))
                cost += cost_model.progress_update_cost
            if ctx._extra_cost:
                cost += ctx._extra_cost
                ctx._extra_cost = 0.0
            buffered = ctx._send_buffer
            if buffered:
                ctx._send_buffer = []
                for item in buffered:
                    sends.append((ctx, item))
        return cost

    def _process_one(self, item, sends: list, deferred: list) -> float:
        cost_model = self._runtime.cluster.cost
        trace = self._runtime.sim.trace
        if type(item) is SourceWork:
            op_index = item.op_index
            time = item.time
            records = item.records
            ctx = self.contexts[op_index]
            cost = (
                cost_model.batch_overhead
                + len(records) * cost_model.ingest_record_cost
            )
            if trace.wants_batch:
                trace.publish(
                    BatchDelivered(
                        worker=self.worker_id,
                        op=op_index,
                        channel=None,
                        time=time,
                        records=len(records),
                        size_bytes=0.0,
                        at=self._runtime.sim.now,
                    )
                )
            ctx._current_batch_time = time
            try:
                ctx.send(0, time, records)
            finally:
                ctx._current_batch_time = None
            # Release the per-batch capability InputHandle.send registered.
            deferred.append((0, op_index, time))
        else:
            channel = item.channel
            time = item.time
            records = item.records
            op_index = channel.dst_op
            ctx = self.contexts[op_index]
            input_cost = self._input_cost[op_index]
            if input_cost is not None:
                cost = cost_model.batch_overhead + input_cost(
                    ctx, channel.dst_port, records, item.size_bytes
                )
            else:
                cost = (
                    cost_model.batch_overhead
                    + len(records) * cost_model.record_cost
                )
            if trace.wants_batch:
                trace.publish(
                    BatchDelivered(
                        worker=self.worker_id,
                        op=op_index,
                        channel=channel.index,
                        time=time,
                        records=batch_record_count(records),
                        size_bytes=item.size_bytes,
                        at=self._runtime.sim.now,
                    )
                )
            ctx._current_batch_time = time
            try:
                self._on_input[op_index](ctx, channel.dst_port, time, records)
            finally:
                ctx._current_batch_time = None
            deferred.append((1, channel.index, time))
        if ctx._extra_cost:
            cost += ctx._extra_cost
            ctx._extra_cost = 0.0
        buffered = ctx._send_buffer
        if buffered:
            ctx._send_buffer = []
            for send_item in buffered:
                sends.append((ctx, send_item))
        return cost

    def _flush_sends(self, sends: list) -> Optional[Callable[[], None]]:
        """Partition buffered sends; return the network hand-off closure.

        In-flight counts are charged immediately (conservative frontier);
        the caller schedules the returned closure at the activation's
        completion time, when the bytes start to travel.  Record counts —
        CPU fractions, wire bytes, trace events — always reflect the
        *underlying* records, so grouped carriers cost exactly what their
        per-record equivalent would.
        """
        runtime = self._runtime
        cost_model = runtime.cluster.cost
        trace = runtime.sim.trace
        wants_send = trace.wants_send
        outgoing: list[RoutedSend] = []
        for ctx, buffered in sends:
            records = buffered.records
            time = buffered.time
            total_count = batch_record_count(records)
            if wants_send:
                trace.publish(
                    SendFlushed(
                        worker=self.worker_id,
                        op=ctx.op_index,
                        port=buffered.port,
                        time=time,
                        records=total_count,
                        at=runtime.sim.now,
                    )
                )
            for channel in runtime.channels_from(ctx.op_index, buffered.port):
                parts = self._partition(channel, records)
                for dst_worker, batch in parts.items():
                    batch_count = (
                        total_count if batch is records else batch_record_count(batch)
                    )
                    if buffered.size_bytes is None:
                        bytes_ = batch_count * cost_model.message_bytes_per_record
                        retained = buffered.retained_bytes
                        if retained:
                            retained *= batch_count / (total_count or 1)
                    else:
                        # Explicit sizes (migrating state) are per-send,
                        # split proportionally if fanned out.
                        fraction = batch_count / (total_count or 1)
                        bytes_ = buffered.size_bytes * fraction
                        retained = buffered.retained_bytes * fraction
                    runtime.tracker.message_sent(channel.index, time)
                    outgoing.append(
                        RoutedSend(
                            channel=channel,
                            dst_worker=dst_worker,
                            time=time,
                            records=batch,
                            size_bytes=bytes_,
                            retained_bytes=retained,
                        )
                    )
            # In-flight counts now cover the batch: drop the send guard.
            runtime.tracker.capability_update(ctx.op_index, time, -1)
        if not outgoing:
            return None

        def _dispatch() -> None:
            if not self.alive:
                # The sender crashed between the send decision and the
                # network hand-off: the batches are lost.  Consume their
                # in-flight counts and unpin the sender's retained bytes
                # so the crash cannot wedge frontiers or RSS accounting.
                memory = runtime.cluster.process_of(self.worker_id).memory
                for routed in outgoing:
                    runtime.tracker.message_consumed(routed.channel.index, routed.time)
                    if routed.retained_bytes:
                        memory.add_retained(-routed.retained_bytes)
                    if trace.wants_faults:
                        trace.publish(
                            MessageDropped(
                                src_worker=self.worker_id,
                                dst_worker=routed.dst_worker,
                                size_bytes=routed.size_bytes,
                                reason="crashed-sender",
                                at=runtime.sim.now,
                            )
                        )
                runtime.mark_progress()
                return
            # Injected faults can only drop messages while a chaos injector
            # is attached; without one the per-message compensation closure
            # can never fire, so skip allocating it.
            chaos_attached = runtime.cluster.chaos is not None
            for routed in outgoing:
                message = NetworkMessage(
                    src_worker=self.worker_id,
                    dst_worker=routed.dst_worker,
                    size_bytes=routed.size_bytes,
                    payload=ChannelPayload(
                        channel=routed.channel,
                        time=routed.time,
                        records=routed.records,
                    ),
                    retained_bytes=routed.retained_bytes,
                    # A link fault may lose the message in the network; the
                    # in-flight count it carries must then be consumed here,
                    # or the channel frontier would wait forever for it.
                    on_dropped=(
                        (lambda _msg, r=routed: _compensate_drop(r))
                        if chaos_attached
                        else None
                    ),
                )
                runtime.cluster.send(message, _deliver)

        def _compensate_drop(routed: RoutedSend) -> None:
            runtime.tracker.message_consumed(routed.channel.index, routed.time)
            runtime.mark_progress()

        def _deliver(message: NetworkMessage) -> None:
            payload = message.payload
            runtime.workers[message.dst_worker].enqueue_message(
                payload.channel, payload.time, payload.records, message.size_bytes
            )

        return _dispatch

    # -- crash and restart (driven by the chaos injector) ----------------------

    def discard_pending_work(self) -> None:
        """Drop every queued batch and pending frontier note (crash path).

        Each dropped item's progress accounting is compensated: message
        batches consume their channel's in-flight count, source batches
        release the per-batch capability their ``InputHandle.send``
        registered.  Without this, a crash would freeze the frontier at the
        oldest undelivered batch forever.
        """
        tracker = self._runtime.tracker
        while self._work:
            item = self._work.popleft()
            if type(item) is SourceWork:
                tracker.capability_update(item.op_index, item.time, -1)
            else:
                tracker.message_consumed(item.channel.index, item.time)
        self._frontier_pending.clear()
        self._runtime.mark_progress()

    def release_all_capabilities(self) -> None:
        """Release every capability this worker's operators hold (crash path).

        Covers explicitly held capabilities, pending-notification
        capabilities, and send guards of batches buffered but not yet
        flushed.  Afterwards the worker holds no progress obligations and
        the rest of the cluster can advance past it.
        """
        tracker = self._runtime.tracker
        for ctx in self.contexts:
            op = ctx.op_index
            for time, count in list(ctx._held_capabilities.items()):
                tracker.capability_update(op, time, -count)
            ctx._held_capabilities.clear()
            for time in list(ctx._notify_pending):
                tracker.capability_update(op, time, -1)
            ctx._notify_pending.clear()
            ctx._notify_heap.clear()
            for buffered in ctx._take_sends():
                tracker.capability_update(op, buffered.time, -1)
        self._runtime.mark_progress()

    def reinstall_operators(self) -> None:
        """Rebuild every operator instance from the graph (restart path).

        The restarted process comes back with freshly constructed logics and
        empty contexts — all pre-crash operator state is gone, exactly like
        a real process restart.  Source capabilities are *not* re-added:
        those belong to the (closed) input handles.  Recovery may then
        reseed Megaphone bin state through the coordinator.
        """
        self.shared.clear()
        self.contexts.clear()
        self.logics.clear()
        self._on_input.clear()
        self._on_frontier.clear()
        self._on_notify.clear()
        self._input_cost.clear()
        for desc in self._runtime.graph.operators:
            logic = desc.logic_factory(self.worker_id)
            self.install(desc, logic)
        self._busy_until = self._runtime.sim.now
        self._activation_scheduled = False

    def _partition(self, channel: ChannelDesc, records: list) -> dict[int, list]:
        num_workers = self._runtime.num_workers
        pact = channel.pact
        pact_type = type(pact)
        # Fast paths for the pacts whose routing is known without consulting
        # the records (Pipeline, Broadcast) or one attribute per *group*
        # (GroupedExchange); the generic loop handles everything else.
        if pact_type is Pipeline:
            return {self.worker_id: records}
        if pact_type is GroupedExchange:
            parts: dict[int, list] = {}
            for batch in records:
                dst = batch.dst % num_workers
                existing = parts.get(dst)
                if existing is None:
                    parts[dst] = [batch]
                else:
                    existing.append(batch)
            return parts
        if pact_type is Broadcast:
            return {dst: list(records) for dst in range(num_workers)}
        parts = {}
        route = pact.route
        for record in records:
            for dst in route(record, num_workers, self.worker_id):
                parts.setdefault(dst, []).append(record)
        return parts
