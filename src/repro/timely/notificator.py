"""Pending-work helpers: timely's Notificator idiom and Megaphone's
extended, data-carrying variant.

Timely dataflow's ``Notificator`` lets an operator ask to be woken when the
input frontier passes a time, but does not remember which keys, values, or
records prompted the request.  Megaphone extends the idiom (paper §4.3,
"Capturing timely idioms"): future ``(time, key, val)`` triples are buffered
in a priority queue and replayed once the frontier permits, which both
relieves operators of side bookkeeping and surfaces pending records for
migration.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

from repro.timely.timestamp import Timestamp


def _sort_key(time: Timestamp):
    if isinstance(time, tuple):
        return (1, time)
    return (0, (time,))


class PendingQueue:
    """A priority queue of ``(time, item)`` pairs drained in time order.

    The queue is the migration unit for pending work: Megaphone serializes
    and ships it together with bin state.
    """

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: Timestamp, item: object) -> None:
        """Buffer ``item`` for replay at ``time``."""
        self._seq += 1
        heapq.heappush(self._heap, (_sort_key(time), self._seq, time, item))

    def peek_time(self) -> Optional[Timestamp]:
        """Earliest buffered time, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][2]

    def pop_ready(self, ready: Callable[[Timestamp], bool]) -> list[tuple[Timestamp, object]]:
        """Pop all entries whose time satisfies ``ready``, earliest first.

        ``ready`` is typically "the frontier has passed this time".  Stops at
        the first entry that is not ready (entries are time-ordered).
        """
        out: list[tuple[Timestamp, object]] = []
        while self._heap and ready(self._heap[0][2]):
            _, _, time, item = heapq.heappop(self._heap)
            out.append((time, item))
        return out

    def drain(self) -> list[tuple[Timestamp, object]]:
        """Remove and return everything, earliest first (used by migration)."""
        out = []
        while self._heap:
            _, _, time, item = heapq.heappop(self._heap)
            out.append((time, item))
        return out

    def extend(self, entries: Iterable[tuple[Timestamp, object]]) -> None:
        """Install entries (used when receiving migrated pending work)."""
        for time, item in entries:
            self.push(time, item)

    def times(self) -> list[Timestamp]:
        """Distinct buffered times."""
        return sorted({entry[2] for entry in self._heap}, key=_sort_key)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
