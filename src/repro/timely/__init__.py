"""A simulated timely dataflow runtime.

This package reproduces the substrate Megaphone is built on: Naiad-style
timely dataflow with logical timestamps, set-valued frontiers (antichains),
capabilities, exact progress tracking, data-parallel workers, and exchange
channels — executed on the discrete-event cluster simulation in
``repro.sim``.

Import order note: importing this package also grafts the Stream
combinators (map/filter/exchange/unary/...) onto ``Stream``.
"""

from repro.timely.antichain import Antichain, MutableAntichain
from repro.timely.dataflow import (
    Dataflow,
    InputGroup,
    InputHandle,
    ProbeHandle,
    Runtime,
    Stream,
)
from repro.timely.graph import Broadcast, Exchange, GraphBuilder, Pact, Pipeline
from repro.timely.notificator import PendingQueue
from repro.timely import operators as _operators  # noqa: F401  (grafts Stream methods)
from repro.timely.operators import FnLogic, concatenate
from repro.timely.probe import Probe
from repro.timely.progress import FrontierChange, ProgressTracker
from repro.timely.timestamp import (
    Timestamp,
    in_advance_of,
    join,
    less_equal,
    less_than,
    meet,
)
from repro.timely.worker import OpContext, WorkerRuntime

__all__ = [
    "Antichain",
    "Broadcast",
    "Dataflow",
    "Exchange",
    "FnLogic",
    "FrontierChange",
    "GraphBuilder",
    "InputGroup",
    "InputHandle",
    "MutableAntichain",
    "OpContext",
    "Pact",
    "PendingQueue",
    "Pipeline",
    "Probe",
    "ProbeHandle",
    "ProgressTracker",
    "Runtime",
    "Stream",
    "Timestamp",
    "WorkerRuntime",
    "concatenate",
    "in_advance_of",
    "join",
    "less_equal",
    "less_than",
    "meet",
]
