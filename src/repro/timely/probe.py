"""Probes: passive observation of timestamp progress at a dataflow point.

Timely dataflow probes let any party — downstream operators, external
controllers, test harnesses — observe how far a stream's frontier has
advanced without interrupting execution (paper §4.3, "Monitoring output
frontiers").  A probe on a stream reports the output frontier of the
operator that produces it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.timely.antichain import Antichain
from repro.timely.timestamp import Timestamp

if TYPE_CHECKING:  # pragma: no cover
    from repro.timely.dataflow import Runtime


class Probe:
    """Observes the output frontier of one operator."""

    def __init__(self, runtime: "Runtime", op_index: int) -> None:
        self._runtime = runtime
        self.op_index = op_index
        self._callbacks: list[Callable[[Antichain], None]] = []

    def frontier(self) -> Antichain:
        """The probed stream's current frontier."""
        return self._runtime.tracker.output_frontier(self.op_index)

    def pending(self, time: Timestamp) -> bool:
        """True when records with timestamp <= ``time`` may still appear."""
        return self.frontier().less_equal(time)

    def passed(self, time: Timestamp) -> bool:
        """True when the frontier has advanced beyond ``time``.

        This is the paper's migration trigger: once ``time`` can no longer
        appear at the probed point, all earlier updates have been absorbed.
        """
        return not self.pending(time)

    def reached(self, time: Timestamp) -> bool:
        """True when ``time`` itself is present in or beyond the frontier.

        Matches the paper's phrasing "F initiates a migration once time is
        present in the output frontier of S": equivalent to no *strictly
        smaller* timestamp remaining.
        """
        frontier = self.frontier()
        return not frontier.less_than(time)

    def done(self) -> bool:
        """True when the frontier is closed (the stream is complete)."""
        return self.frontier().is_empty()

    def on_advance(self, callback: Callable[[Antichain], None]) -> None:
        """Register ``callback(frontier)`` for every frontier change."""
        self._callbacks.append(callback)

    def _fire(self, frontier: Antichain) -> None:
        for callback in self._callbacks:
            callback(frontier)
