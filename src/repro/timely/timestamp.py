"""Logical timestamps.

Timely dataflow timestamps form a partially ordered set.  This reproduction
supports two concrete kinds:

* plain integers (the common case: event-time milliseconds or epochs), which
  are totally ordered; and
* tuples of timestamps (``Product`` timestamps in timely parlance), compared
  component-wise, which are only partially ordered.

The paper's Definition 2 ("in advance of") is ``t' <= t`` for timestamps and
``exists f in F: f <= t`` for frontiers; both are implemented here.
"""

from __future__ import annotations

from typing import Iterable, Union

Timestamp = Union[int, tuple]


def less_equal(a: Timestamp, b: Timestamp) -> bool:
    """Partial-order comparison: is ``a`` <= ``b``?

    Integers compare numerically; tuples compare component-wise (all
    components must be <=).  Mixed or mismatched shapes are programming
    errors and raise ``TypeError``.
    """
    if isinstance(a, tuple) and isinstance(b, tuple):
        if len(a) != len(b):
            raise TypeError(f"mismatched timestamp arity: {a!r} vs {b!r}")
        return all(less_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, tuple) or isinstance(b, tuple):
        raise TypeError(f"cannot compare {a!r} with {b!r}")
    return a <= b


def less_than(a: Timestamp, b: Timestamp) -> bool:
    """Strict partial-order comparison: ``a <= b`` and ``a != b``."""
    return a != b and less_equal(a, b)


def in_advance_of(t: Timestamp, other: Timestamp) -> bool:
    """Paper Definition 2(1): ``t`` is in advance of ``other`` iff t >= other."""
    return less_equal(other, t)


def join(a: Timestamp, b: Timestamp) -> Timestamp:
    """Least upper bound of two timestamps."""
    if isinstance(a, tuple) and isinstance(b, tuple):
        if len(a) != len(b):
            raise TypeError(f"mismatched timestamp arity: {a!r} vs {b!r}")
        return tuple(join(x, y) for x, y in zip(a, b))
    if isinstance(a, tuple) or isinstance(b, tuple):
        raise TypeError(f"cannot join {a!r} with {b!r}")
    return max(a, b)


def meet(a: Timestamp, b: Timestamp) -> Timestamp:
    """Greatest lower bound of two timestamps."""
    if isinstance(a, tuple) and isinstance(b, tuple):
        if len(a) != len(b):
            raise TypeError(f"mismatched timestamp arity: {a!r} vs {b!r}")
        return tuple(meet(x, y) for x, y in zip(a, b))
    if isinstance(a, tuple) or isinstance(b, tuple):
        raise TypeError(f"cannot meet {a!r} with {b!r}")
    return min(a, b)


def minimum_like(t: Timestamp) -> Timestamp:
    """The minimum timestamp of the same shape as ``t``.

    Integer timestamps in this reproduction start at 0; product timestamps
    start at the component-wise minimum.
    """
    if isinstance(t, tuple):
        return tuple(minimum_like(x) for x in t)
    return 0


def totally_ordered(times: Iterable[Timestamp]) -> bool:
    """True when every pair of the given timestamps is comparable."""
    seq = list(times)
    for i, a in enumerate(seq):
        for b in seq[i + 1:]:
            if not (less_equal(a, b) or less_equal(b, a)):
                return False
    return True
