"""Generic timely dataflow operators and Stream combinators.

These are the building blocks "native" (non-migrateable) implementations
use: stateless transforms, exchanges, and the general ``unary``/``binary``
frontier-aware operators that timely dataflow provides.  Megaphone's
migrateable operators (``repro.megaphone.operators``) are built from the
same pieces.

The combinators are attached to :class:`repro.timely.dataflow.Stream` so
user code reads like a timely program::

    counts = (stream
        .exchange(lambda kv: hash(kv[0]))
        .unary("count", make_count_logic))
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.timely.dataflow import ProbeHandle, Stream
from repro.timely.graph import Broadcast, Exchange, Pact, Pipeline
from repro.timely.timestamp import Timestamp


class FnLogic:
    """Operator logic assembled from plain functions.

    Any of the hooks may be omitted.  ``on_input(ctx, port, time, records)``
    handles data; ``on_frontier(ctx)`` observes progress; ``on_notify(ctx,
    time)`` receives requested notifications; ``input_cost(ctx, port,
    records, size_bytes)`` customizes the CPU cost model for a batch.
    """

    def __init__(
        self,
        on_input: Optional[Callable] = None,
        on_frontier: Optional[Callable] = None,
        on_notify: Optional[Callable] = None,
        input_cost: Optional[Callable] = None,
    ) -> None:
        if on_input is not None:
            self.on_input = on_input
        if on_frontier is not None:
            self.on_frontier = on_frontier
        if on_notify is not None:
            self.on_notify = on_notify
        if input_cost is not None:
            self.input_cost = input_cost

    def on_input(self, ctx, port: int, time: Timestamp, records: list) -> None:
        """Default: drop data silently (overridden via constructor)."""


def _attach(name):
    def decorator(fn):
        setattr(Stream, name, fn)
        return fn

    return decorator


@_attach("unary")
def unary(
    self: Stream,
    name: str,
    logic_factory: Callable[[int], object],
    pact: Optional[Pact] = None,
    n_outputs: int = 1,
) -> Stream:
    """Attach a single-input operator; returns its first output stream."""
    outputs = self.dataflow.add_operator(
        name=name,
        inputs=[(self, pact if pact is not None else Pipeline())],
        n_outputs=n_outputs,
        logic_factory=logic_factory,
    )
    return outputs[0]


@_attach("binary")
def binary(
    self: Stream,
    other: Stream,
    name: str,
    logic_factory: Callable[[int], object],
    pact1: Optional[Pact] = None,
    pact2: Optional[Pact] = None,
    n_outputs: int = 1,
) -> Stream:
    """Attach a two-input operator; returns its first output stream."""
    outputs = self.dataflow.add_operator(
        name=name,
        inputs=[
            (self, pact1 if pact1 is not None else Pipeline()),
            (other, pact2 if pact2 is not None else Pipeline()),
        ],
        n_outputs=n_outputs,
        logic_factory=logic_factory,
    )
    return outputs[0]


@_attach("map")
def map_stream(self: Stream, fn: Callable, name: str = "map") -> Stream:
    """Per-record transformation (stateless, worker-local)."""

    def factory(worker_id: int) -> FnLogic:
        def on_input(ctx, port, time, records):
            ctx.send(0, time, [fn(r) for r in records])

        return FnLogic(on_input=on_input)

    return unary(self, name, factory)


@_attach("flat_map")
def flat_map(self: Stream, fn: Callable, name: str = "flat_map") -> Stream:
    """Per-record one-to-many transformation."""

    def factory(worker_id: int) -> FnLogic:
        def on_input(ctx, port, time, records):
            out: list = []
            for r in records:
                out.extend(fn(r))
            ctx.send(0, time, out)

        return FnLogic(on_input=on_input)

    return unary(self, name, factory)


@_attach("filter")
def filter_stream(self: Stream, predicate: Callable, name: str = "filter") -> Stream:
    """Keep records satisfying ``predicate``."""

    def factory(worker_id: int) -> FnLogic:
        def on_input(ctx, port, time, records):
            kept = [r for r in records if predicate(r)]
            if kept:
                ctx.send(0, time, kept)

        return FnLogic(on_input=on_input)

    return unary(self, name, factory)


@_attach("exchange")
def exchange(self: Stream, key_fn: Callable[[object], int], name: str = "exchange") -> Stream:
    """Repartition the stream across workers by ``key_fn``."""

    def factory(worker_id: int) -> FnLogic:
        def on_input(ctx, port, time, records):
            ctx.send(0, time, records)

        return FnLogic(on_input=on_input)

    return unary(self, name, factory, pact=Exchange(key_fn))


@_attach("broadcast")
def broadcast(self: Stream, name: str = "broadcast") -> Stream:
    """Deliver every record to every worker."""

    def factory(worker_id: int) -> FnLogic:
        def on_input(ctx, port, time, records):
            ctx.send(0, time, records)

        return FnLogic(on_input=on_input)

    return unary(self, name, factory, pact=Broadcast())


@_attach("inspect")
def inspect(self: Stream, fn: Callable, name: str = "inspect") -> Stream:
    """Observe records in passing (``fn(worker_id, time, records)``)."""

    def factory(worker_id: int) -> FnLogic:
        def on_input(ctx, port, time, records):
            fn(ctx.worker_id, time, records)
            ctx.send(0, time, records)

        return FnLogic(on_input=on_input)

    return unary(self, name, factory)


@_attach("sink")
def sink(self: Stream, fn: Optional[Callable] = None, name: str = "sink") -> Stream:
    """Consume the stream; optionally observe (``fn(worker_id, time, records)``)."""

    def factory(worker_id: int) -> FnLogic:
        def on_input(ctx, port, time, records):
            if fn is not None:
                fn(ctx.worker_id, time, records)

        return FnLogic(on_input=on_input)

    return unary(self, name, factory)


@_attach("probe")
def probe(self: Stream) -> ProbeHandle:
    """Attach a probe observing this stream's frontier."""
    return self.dataflow.probe(self)


def concatenate(streams: list[Stream], name: str = "concat") -> Stream:
    """Merge multiple streams of the same type into one."""
    if not streams:
        raise ValueError("need at least one stream")
    dataflow = streams[0].dataflow

    def factory(worker_id: int) -> FnLogic:
        def on_input(ctx, port, time, records):
            ctx.send(0, time, records)

        return FnLogic(on_input=on_input)

    outputs = dataflow.add_operator(
        name=name,
        inputs=[(s, Pipeline()) for s in streams],
        n_outputs=1,
        logic_factory=factory,
    )
    return outputs[0]
