"""Dataflow graph description: operators, ports, channels, exchange pacts.

The graph is a build-time description shared by all workers.  Every operator
is instantiated once per worker; channels describe how records move between
operator instances (within a worker, or exchanged/broadcast across workers).
The graph must be acyclic — Megaphone needs no feedback edges, and acyclicity
lets progress tracking propagate frontiers in one topological pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence


class Pact:
    """Parallelization contract: how a channel partitions records."""

    def route(self, record: object, num_workers: int, src_worker: int) -> Sequence[int]:
        """Destination worker ids for ``record``."""
        raise NotImplementedError


class Pipeline(Pact):
    """Records stay on the worker that produced them."""

    def route(self, record: object, num_workers: int, src_worker: int) -> Sequence[int]:
        return (src_worker,)

    def __repr__(self) -> str:
        return "Pipeline()"


class Exchange(Pact):
    """Records are routed by a key function modulo the worker count."""

    def __init__(self, key_fn: Callable[[object], int]) -> None:
        self.key_fn = key_fn

    def route(self, record: object, num_workers: int, src_worker: int) -> Sequence[int]:
        return (self.key_fn(record) % num_workers,)

    def __repr__(self) -> str:
        return f"Exchange({self.key_fn!r})"


class Broadcast(Pact):
    """Every worker receives a copy of every record."""

    def route(self, record: object, num_workers: int, src_worker: int) -> Sequence[int]:
        return range(num_workers)

    def __repr__(self) -> str:
        return "Broadcast()"


class GroupedExchange(Pact):
    """Records are destination-grouped batches that carry their own target.

    Used by Megaphone's F→S data channel: each record is a
    :class:`repro.runtime_events.items.DestinationBatch` whose ``dst`` field
    names the receiving worker, so partitioning costs one attribute read per
    *group* instead of one key hash per record.
    """

    def route(self, record: object, num_workers: int, src_worker: int) -> Sequence[int]:
        return (record.dst % num_workers,)

    def __repr__(self) -> str:
        return "GroupedExchange()"


@dataclass
class ChannelDesc:
    """A directed edge from an operator output port to an input port."""

    index: int
    src_op: int
    src_port: int
    dst_op: int
    dst_port: int
    pact: Pact
    label: str = ""


@dataclass
class OperatorDesc:
    """A vertex of the dataflow graph.

    ``logic_factory`` builds one logic instance per worker.  ``is_source``
    operators have no input ports and are driven by input handles.
    """

    index: int
    name: str
    n_inputs: int
    n_outputs: int
    logic_factory: Callable[[int], object]
    is_source: bool = False
    initial_timestamp: object = 0


class GraphBuilder:
    """Accumulates operator and channel descriptions for a dataflow."""

    def __init__(self) -> None:
        self.operators: list[OperatorDesc] = []
        self.channels: list[ChannelDesc] = []

    def add_operator(
        self,
        name: str,
        n_inputs: int,
        n_outputs: int,
        logic_factory: Callable[[int], object],
        is_source: bool = False,
        initial_timestamp: object = 0,
    ) -> OperatorDesc:
        """Register an operator and return its description."""
        desc = OperatorDesc(
            index=len(self.operators),
            name=name,
            n_inputs=n_inputs,
            n_outputs=n_outputs,
            logic_factory=logic_factory,
            is_source=is_source,
            initial_timestamp=initial_timestamp,
        )
        self.operators.append(desc)
        return desc

    def connect(
        self,
        src_op: int,
        src_port: int,
        dst_op: int,
        dst_port: int,
        pact: Pact,
        label: str = "",
    ) -> ChannelDesc:
        """Register a channel between two ports, validating port bounds."""
        src = self.operators[src_op]
        dst = self.operators[dst_op]
        if not 0 <= src_port < src.n_outputs:
            raise ValueError(f"{src.name} has no output port {src_port}")
        if not 0 <= dst_port < dst.n_inputs:
            raise ValueError(f"{dst.name} has no input port {dst_port}")
        channel = ChannelDesc(
            index=len(self.channels),
            src_op=src_op,
            src_port=src_port,
            dst_op=dst_op,
            dst_port=dst_port,
            pact=pact,
            label=label or f"{src.name}:{src_port}->{dst.name}:{dst_port}",
        )
        self.channels.append(channel)
        return channel

    def inputs_of(self, op: int) -> list[list[ChannelDesc]]:
        """Channels arriving at each input port of ``op``."""
        by_port: list[list[ChannelDesc]] = [[] for _ in range(self.operators[op].n_inputs)]
        for channel in self.channels:
            if channel.dst_op == op:
                by_port[channel.dst_port].append(channel)
        return by_port

    def outputs_of(self, op: int) -> list[list[ChannelDesc]]:
        """Channels leaving each output port of ``op``."""
        by_port: list[list[ChannelDesc]] = [[] for _ in range(self.operators[op].n_outputs)]
        for channel in self.channels:
            if channel.src_op == op:
                by_port[channel.src_port].append(channel)
        return by_port

    def topological_order(self) -> list[int]:
        """Operator indices in topological order; raises on cycles."""
        indegree = [0] * len(self.operators)
        successors: list[set[int]] = [set() for _ in self.operators]
        edge_seen: set[tuple[int, int]] = set()
        for channel in self.channels:
            edge = (channel.src_op, channel.dst_op)
            if edge not in edge_seen and channel.src_op != channel.dst_op:
                edge_seen.add(edge)
                successors[channel.src_op].add(channel.dst_op)
                indegree[channel.dst_op] += 1
            elif channel.src_op == channel.dst_op:
                raise ValueError(f"self-loop at operator {channel.src_op}")
        ready = [i for i, deg in enumerate(indegree) if deg == 0]
        order: list[int] = []
        while ready:
            op = ready.pop(0)
            order.append(op)
            for succ in sorted(successors[op]):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.operators):
            raise ValueError("dataflow graph contains a cycle")
        return order
