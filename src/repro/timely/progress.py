"""Progress tracking: capabilities, in-flight messages, frontier propagation.

This is an exact, centralized implementation of the Naiad progress-tracking
protocol for acyclic dataflows.  The real system distributes the protocol by
broadcasting count updates between workers; because correctness only needs
the *conservative* property (a frontier never advances past a timestamp that
may still appear), a centralized exact tracker is a faithful stand-in and is
what lets the reproduction make hard guarantees in tests.

Accounting:

* Every operator holds a multiset of **capabilities** (timestamps at which
  it may still produce output).  Sources hold a capability at their current
  epoch; notificators hold capabilities at requested times; Megaphone's F
  operator holds capabilities at pending migration times.
* Every channel holds a multiset of **in-flight** message timestamps,
  incremented when a batch is sent and decremented when the receiving
  operator instance has fully consumed it (delivery alone is not enough —
  queued batches still hold the frontier back, which is exactly what creates
  observable latency under backlog).

Frontiers:

* ``output_frontier(op)`` = minimal elements of (op's capabilities ∪ all of
  op's input frontiers) — the identity path summary of an acyclic graph.
* ``input_frontier(op, port)`` = minimal elements over incoming channels of
  (channel in-flight times ∪ upstream output frontier).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.timely.antichain import Antichain, MutableAntichain
from repro.timely.graph import GraphBuilder
from repro.timely.timestamp import Timestamp


@dataclass(frozen=True)
class FrontierChange:
    """One observed input-frontier change."""

    op: int
    port: int
    frontier: Antichain


@dataclass(frozen=True)
class ProgressChanges:
    """Frontier changes produced by one propagation pass."""

    inputs: tuple[FrontierChange, ...]
    outputs: tuple[int, ...]  # operator indices whose output frontier changed

    def __bool__(self) -> bool:
        return bool(self.inputs or self.outputs)


_NO_CHANGES = ProgressChanges(inputs=(), outputs=())


class ProgressTracker:
    """Exact frontier computation over an acyclic dataflow graph."""

    def __init__(self, graph: GraphBuilder) -> None:
        self._graph = graph
        self._topo = graph.topological_order()
        self._capabilities: list[MutableAntichain] = [
            MutableAntichain() for _ in graph.operators
        ]
        self._in_flight: list[MutableAntichain] = [
            MutableAntichain() for _ in graph.channels
        ]
        self._inputs_of = [graph.inputs_of(op.index) for op in graph.operators]
        self._input_frontiers: dict[tuple[int, int], Antichain] = {}
        self._output_frontiers: list[Antichain] = [
            Antichain() for _ in graph.operators
        ]
        for op in graph.operators:
            for port in range(op.n_inputs):
                self._input_frontiers[(op.index, port)] = Antichain()
        # Incremental propagation: only operators whose capabilities, input
        # channels, or upstream output frontiers changed since the last pass
        # need recomputation.  ``_channel_dst`` maps channel index -> dst op;
        # ``_downstream`` maps op -> ops fed by its output channels.
        self._channel_dst: list[int] = [ch.dst_op for ch in graph.channels]
        downstream: list[list[int]] = [[] for _ in graph.operators]
        for ch in graph.channels:
            if ch.dst_op not in downstream[ch.src_op]:
                downstream[ch.src_op].append(ch.dst_op)
        self._downstream: list[list[int]] = downstream
        self._dirty = True
        self._dirty_ops: set[int] = set(self._topo)
        self._pending_inputs: list[FrontierChange] = []
        self._pending_outputs: list[int] = []

    # -- accounting updates ------------------------------------------------

    def capability_update(self, op: int, time: Timestamp, delta: int) -> None:
        """Adjust operator ``op``'s capability count at ``time``."""
        if self._capabilities[op].update(time, delta):
            self._dirty = True
            self._dirty_ops.add(op)

    def message_sent(self, channel: int, time: Timestamp, count: int = 1) -> None:
        """Record ``count`` batches sent on ``channel`` at ``time``."""
        if self._in_flight[channel].update(time, count):
            self._dirty = True
            self._dirty_ops.add(self._channel_dst[channel])

    def message_consumed(self, channel: int, time: Timestamp, count: int = 1) -> None:
        """Record ``count`` batches consumed from ``channel`` at ``time``."""
        if self._in_flight[channel].update(time, -count):
            self._dirty = True
            self._dirty_ops.add(self._channel_dst[channel])

    # -- frontier queries ----------------------------------------------------

    def input_frontier(self, op: int, port: int) -> Antichain:
        """Current frontier of input ``port`` of operator ``op``."""
        self.propagate()
        return self._input_frontiers[(op, port)]

    def output_frontier(self, op: int) -> Antichain:
        """Current output frontier of operator ``op``."""
        self.propagate()
        return self._output_frontiers[op]

    def capabilities(self, op: int) -> MutableAntichain:
        """Operator ``op``'s capability multiset (for assertions/tests)."""
        return self._capabilities[op]

    def in_flight(self, channel: int) -> MutableAntichain:
        """Channel in-flight multiset (for assertions/tests)."""
        return self._in_flight[channel]

    def idle(self) -> bool:
        """True when no capabilities and no in-flight messages remain."""
        return all(c.is_empty() for c in self._capabilities) and all(
            f.is_empty() for f in self._in_flight
        )

    # -- propagation ---------------------------------------------------------

    def propagate(self) -> None:
        """Recompute dirty frontiers; accumulate changes for draining.

        Only operators touched by an accounting update — or fed by an
        operator whose output frontier changed this pass — are recomputed;
        every other operator's frontiers are provably unchanged.  Changes
        survive until ``drain_changes`` is called, so frontier queries issued
        from inside operator callbacks never swallow change notifications
        intended for the runtime.
        """
        if not self._dirty:
            return
        self._dirty = False
        dirty_ops = self._dirty_ops
        self._dirty_ops = set()
        input_changes = self._pending_inputs
        output_changes = self._pending_outputs
        for op_index in self._topo:
            if op_index not in dirty_ops:
                continue
            desc = self._graph.operators[op_index]
            input_frontiers: list[Antichain] = []
            for port in range(desc.n_inputs):
                frontier = Antichain()
                for channel in self._inputs_of[op_index][port]:
                    for time in self._in_flight[channel.index].frontier():
                        frontier.insert(time)
                    for time in self._output_frontiers[channel.src_op]:
                        frontier.insert(time)
                input_frontiers.append(frontier)
                key = (op_index, port)
                if frontier != self._input_frontiers[key]:
                    self._input_frontiers[key] = frontier
                    input_changes.append(
                        FrontierChange(op=op_index, port=port, frontier=frontier)
                    )
            output = Antichain()
            for time in self._capabilities[op_index].frontier():
                output.insert(time)
            for frontier in input_frontiers:
                for time in frontier:
                    output.insert(time)
            if output != self._output_frontiers[op_index]:
                output_changes.append(op_index)
                self._output_frontiers[op_index] = output
                # A changed output frontier can move downstream input
                # frontiers; those ops come later in topological order,
                # so marking them here reaches them within this pass.
                dirty_ops.update(self._downstream[op_index])

    def drain_changes(self) -> ProgressChanges:
        """Propagate and hand back all accumulated frontier changes."""
        self.propagate()
        if not self._pending_inputs and not self._pending_outputs:
            return _NO_CHANGES
        changes = ProgressChanges(
            inputs=tuple(self._pending_inputs),
            outputs=tuple(dict.fromkeys(self._pending_outputs)),
        )
        self._pending_inputs = []
        self._pending_outputs = []
        return changes

    @property
    def dirty(self) -> bool:
        """True when an update has not yet been propagated."""
        return self._dirty

    @property
    def has_updates(self) -> bool:
        """True when propagation or undrained changes are outstanding."""
        return self._dirty or bool(self._pending_inputs) or bool(self._pending_outputs)
