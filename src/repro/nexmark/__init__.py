"""NEXMark benchmark suite (paper §5.1).

A deterministic port of the reference generator plus all eight standing
queries, each implemented twice: hand-tuned on the native timely substrate
and on Megaphone's reconfigurable operator interface.
"""

from repro.nexmark.config import NexmarkConfig
from repro.nexmark.generator import NexmarkGenerator, make_generator
from repro.nexmark.harness import STATEFUL_QUERIES, run_nexmark_experiment
from repro.nexmark.model import Auction, Bid, Person, kind_of
from repro.nexmark.queries import QUERIES

__all__ = [
    "Auction",
    "Bid",
    "NexmarkConfig",
    "NexmarkGenerator",
    "Person",
    "QUERIES",
    "STATEFUL_QUERIES",
    "kind_of",
    "make_generator",
    "run_nexmark_experiment",
]
