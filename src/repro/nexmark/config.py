"""NEXMark generator configuration.

Mirrors the knobs of the reference generator the paper uses: the
person/auction/bid event mix (1 : 3 : 46 out of 50), a *static* number of
concurrently active auctions (the paper notes this explicitly: replaying
the generator faster shrinks auction duration, not the active set), hot-key
skew for bidders and auctions, and the time-dilation hooks used to exercise
the large windows of Q5 and Q8 at benchmark timescales.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NexmarkConfig:
    """Structural parameters of the synthetic auction site."""

    # Event mix per 50-event cycle (reference generator defaults).
    person_proportion: int = 1
    auction_proportion: int = 3
    bid_proportion: int = 46

    # The number of auctions open at any instant is fixed.
    active_auctions: int = 100
    # Fraction (1/hot_auction_ratio) of bids that target the hottest auctions.
    hot_auction_ratio: int = 4
    hot_auction_count: int = 10

    num_categories: int = 10
    # Auction lifetime in event-time milliseconds.
    auction_duration_ms: int = 10_000

    # Q3's filters.
    filtered_states: tuple = ("OR", "ID", "CA")
    filtered_category: int = 10

    # Dilation: event time advances `dilation` times faster than epoch time,
    # used to exercise Q5's sixty-minute and Q8's twelve-hour windows at
    # benchmark timescales (paper §5.1 dilates Q5 by 60 and Q8 by 79).
    dilation: int = 1

    # Scale factor applied to every query's modeled per-entry state size;
    # benchmarks use it to reach paper-scale state with scaled-down key
    # populations (see DESIGN.md, substitution 2).
    state_bytes_scale: float = 1.0

    # Window sizes in *event-time* milliseconds.
    q5_window_ms: int = 60_000
    q5_period_ms: int = 1_000
    q7_window_ms: int = 1_000
    q8_window_ms: int = 12 * 3600 * 1000

    @property
    def events_per_cycle(self) -> int:
        return (
            self.person_proportion
            + self.auction_proportion
            + self.bid_proportion
        )
