"""NEXMark data model: persons, auctions, bids.

Field layout follows the NEXMark specification (Tucker et al., 2002) as
adopted by the paper's reference generator: an auction site where persons
open auctions in categories and place bids.  ``date_time`` fields are
integer event-time milliseconds (the dataflow timestamp domain).
"""

from __future__ import annotations

from dataclasses import dataclass

PERSON_KIND = "person"
AUCTION_KIND = "auction"
BID_KIND = "bid"


@dataclass(frozen=True)
class Person:
    """A registered user who may sell or bid."""

    id: int
    name: str
    email: str
    city: str
    state: str
    date_time: int


@dataclass(frozen=True)
class Auction:
    """An item listed for sale."""

    id: int
    item_name: str
    initial_bid: int
    reserve: int
    date_time: int
    expires: int
    seller: int
    category: int


@dataclass(frozen=True)
class Bid:
    """A bid on an open auction."""

    auction: int
    bidder: int
    price: int
    date_time: int


def kind_of(record: object) -> str:
    """The NEXMark kind tag of a record."""
    if isinstance(record, Person):
        return PERSON_KIND
    if isinstance(record, Auction):
        return AUCTION_KIND
    if isinstance(record, Bid):
        return BID_KIND
    raise TypeError(f"not a NEXMark record: {type(record).__name__}")


US_STATES = ("OR", "ID", "CA", "WA", "AZ", "NV", "UT", "MT", "NM", "CO")
US_CITIES = (
    "Portland", "Boise", "Sacramento", "Seattle", "Phoenix",
    "Reno", "Provo", "Helena", "Santa Fe", "Denver",
)
FIRST_NAMES = ("Walter", "Ada", "Grace", "Alan", "Edsger", "Barbara", "John", "Frances")
LAST_NAMES = ("Ritchie", "Lovelace", "Hopper", "Turing", "Dijkstra", "Liskov", "Backus")
