"""Deterministic NEXMark event generator.

A Python port of the structural behaviour of the reference generator the
paper drives its harness with:

* events arrive in a fixed 50-event cycle — 1 person, 3 auctions, 46 bids;
* person and auction ids increase monotonically;
* at any moment the ``active_auctions`` most recent auctions are open; bids
  target them uniformly, except that a configurable fraction goes to the
  few hottest (most recent) auctions;
* replaying faster does not change the active-auction count — auctions
  simply live shorter — which is exactly the paper's justification for
  time-dilating Q5 and Q8.

The generator is deterministic per ``(seed, worker)`` and produces records
whose ``date_time`` is the (optionally dilated) epoch timestamp, so event
time and dataflow time stay aligned.
"""

from __future__ import annotations

from repro.harness.openloop import Lcg
from repro.nexmark.config import NexmarkConfig
from repro.nexmark.model import (
    Auction,
    Bid,
    Person,
    FIRST_NAMES,
    LAST_NAMES,
    US_CITIES,
    US_STATES,
)


class NexmarkGenerator:
    """Event source for one worker."""

    def __init__(self, config: NexmarkConfig, worker: int, seed: int = 1) -> None:
        self.config = config
        self.worker = worker
        self._lcg = Lcg(seed * 7919 + worker)
        self._events = 0
        self._next_person = worker
        self._next_auction = worker
        self._person_stride = 1
        self._auction_stride = 1

    def configure_strides(self, num_workers: int) -> None:
        """Give each worker a disjoint id space (ids stay monotone)."""
        self._person_stride = num_workers
        self._auction_stride = num_workers

    # -- record construction ---------------------------------------------------

    def _make_person(self, time_ms: int) -> Person:
        pid = self._next_person
        self._next_person += self._person_stride
        r = self._lcg.next()
        name = (
            f"{FIRST_NAMES[r % len(FIRST_NAMES)]} "
            f"{LAST_NAMES[(r >> 8) % len(LAST_NAMES)]}"
        )
        idx = (r >> 16) % len(US_STATES)
        return Person(
            id=pid,
            name=name,
            email=f"user{pid}@example.com",
            city=US_CITIES[idx],
            state=US_STATES[idx],
            date_time=time_ms,
        )

    def _make_auction(self, time_ms: int) -> Auction:
        aid = self._next_auction
        self._next_auction += self._auction_stride
        r = self._lcg.next()
        seller = self._recent_person_id(r)
        return Auction(
            id=aid,
            item_name=f"item-{aid}",
            initial_bid=1 + r % 100,
            reserve=1 + r % 1000,
            date_time=time_ms,
            expires=time_ms + self.config.auction_duration_ms,
            seller=seller,
            category=1 + (r >> 20) % self.config.num_categories,
        )

    def _make_bid(self, time_ms: int) -> Bid:
        r = self._lcg.next()
        return Bid(
            auction=self._pick_auction(r),
            bidder=self._recent_person_id(r >> 12),
            price=100 + r % 10_000,
            date_time=time_ms,
        )

    def _recent_person_id(self, r: int) -> int:
        newest = max(self._next_person - self._person_stride, 0)
        window = 50 * self._person_stride
        offset = (r % 50) * self._person_stride
        return max(newest - min(offset, newest), newest % self._person_stride)

    def _pick_auction(self, r: int) -> int:
        cfg = self.config
        newest = max(self._next_auction - self._auction_stride, 0)
        if r % cfg.hot_auction_ratio == 0:
            span = cfg.hot_auction_count
        else:
            span = cfg.active_auctions
        offset = ((r >> 8) % span) * self._auction_stride
        return max(newest - min(offset, newest), newest % self._auction_stride)

    # -- the harness-facing surface ----------------------------------------------

    def generate(self, epoch_ms: int, count: int) -> list:
        """The next ``count`` events, stamped with the epoch's event time.

        ``epoch_ms`` is already in the (possibly dilated) event-time domain:
        the open-loop source multiplies processing-time epochs by the
        configured dilation before calling the generator, so event time and
        dataflow timestamps coincide.
        """
        time_ms = epoch_ms
        cfg = self.config
        cycle = cfg.events_per_cycle
        out = []
        for _ in range(count):
            slot = self._events % cycle
            self._events += 1
            if slot < cfg.person_proportion:
                out.append(self._make_person(time_ms))
            elif slot < cfg.person_proportion + cfg.auction_proportion:
                out.append(self._make_auction(time_ms))
            else:
                out.append(self._make_bid(time_ms))
        return out


def make_generator(config: NexmarkConfig, num_workers: int, seed: int = 1):
    """A harness generator function backed by per-worker NexmarkGenerators."""
    generators: dict[int, NexmarkGenerator] = {}

    def generate(worker: int, epoch_ms: int, count: int) -> list:
        gen = generators.get(worker)
        if gen is None:
            gen = generators[worker] = NexmarkGenerator(config, worker, seed)
            gen.configure_strides(num_workers)
        return gen.generate(epoch_ms, count)

    return generate
