"""Shared pieces of the NEXMark query implementations.

``split_events`` fans the generator's single event stream out into persons,
auctions, and bids.  ``closed_auctions_native`` / ``closed_auctions_megaphone``
implement the winning-bid subplan shared by Q4 and Q6 (the paper points out
both queries share a large fraction of their plan): auctions accumulate bids
until they expire, at which point the winning price is emitted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nexmark.model import Auction, Bid, Person
from repro.runtime_events.columns import ColumnBatch
from repro.timely.dataflow import Stream
from repro.timely.graph import Exchange
from repro.timely.operators import FnLogic


@dataclass
class NexmarkStreams:
    """The three NEXMark relations as dataflow streams."""

    persons: Stream
    auctions: Stream
    bids: Stream


def split_events(events: Stream) -> NexmarkStreams:
    """Partition the event stream by record kind."""
    return NexmarkStreams(
        persons=events.filter(lambda e: isinstance(e, Person), name="persons"),
        auctions=events.filter(lambda e: isinstance(e, Auction), name="auctions"),
        bids=events.filter(lambda e: isinstance(e, Bid), name="bids"),
    )


def split_events_columnar(events: Stream, keys: dict) -> NexmarkStreams:
    """``split_events``, but each relation is emitted as columnar batches.

    ``keys`` maps relation name (``"persons"``/``"auctions"``/``"bids"``)
    to the routing key function for that relation — it must mirror the
    exchange functions the downstream Megaphone operator would use, because
    the columnar F routes on the precomputed key column instead of calling
    the exchange function per record.  Message structure (one send per
    non-empty filtered batch, same operator names) matches ``split_events``.
    """

    def split(name: str, kind: type) -> Stream:
        key_fn = keys[name]

        def factory(worker_id: int) -> FnLogic:
            def on_input(ctx, port, time, records):
                kept = [r for r in records if isinstance(r, kind)]
                if kept:
                    ctx.send(
                        0,
                        time,
                        ColumnBatch.from_objects(kept, [key_fn(r) for r in kept]),
                    )

            return FnLogic(on_input=on_input)

        return events.unary(name, factory)

    return NexmarkStreams(
        persons=split("persons", Person),
        auctions=split("auctions", Auction),
        bids=split("bids", Bid),
    )


@dataclass(frozen=True)
class ClosedAuction:
    """An expired auction and its winning price."""

    auction: int
    seller: int
    category: int
    price: int
    expires: int


# -- native subplan -------------------------------------------------------------


class _NativeClosedAuctionsLogic:
    """Hand-tuned closed-auction operator: keyed by auction id.

    Auctions register a notification at their expiry; bids fold into the
    current best price immediately (max is commutative, so arrival order
    within the window does not matter).
    """

    def __init__(self, worker_id: int) -> None:
        self._open: dict[int, list] = {}  # auction id -> [Auction, best price]
        self._closing: dict[int, list] = {}  # expiry time -> auction ids

    def on_input(self, ctx, port, time, records):
        if port == 0:
            for auction in records:
                self._open[auction.id] = [auction, auction.initial_bid]
                if auction.expires not in self._closing:
                    self._closing[auction.expires] = []
                    ctx.notify_at(auction.expires)
                self._closing[auction.expires].append(auction.id)
        else:
            for bid in records:
                entry = self._open.get(bid.auction)
                if (
                    entry is not None
                    and bid.date_time < entry[0].expires
                    and bid.price > entry[1]
                ):
                    entry[1] = bid.price

    def on_notify(self, ctx, time):
        out = []
        for auction_id in self._closing.pop(time, ()):
            auction, price = self._open.pop(auction_id)
            if price >= auction.reserve:
                out.append(
                    ClosedAuction(
                        auction=auction.id,
                        seller=auction.seller,
                        category=auction.category,
                        price=price,
                        expires=auction.expires,
                    )
                )
        if out:
            ctx.send(0, time, out)


def closed_auctions_native(streams: NexmarkStreams) -> Stream:
    """The native winning-bid subplan."""
    return streams.auctions.binary(
        streams.bids,
        "closed_auctions",
        lambda worker_id: _NativeClosedAuctionsLogic(worker_id),
        pact1=Exchange(lambda a: a.id),
        pact2=Exchange(lambda b: b.auction),
    )


# -- megaphone subplan -----------------------------------------------------------


def closed_auctions_fold(time, auctions, bids, state, notificator):
    """Megaphone fold for the winning-bid subplan (keyed by auction id).

    ``state`` maps auction id -> [Auction, best price]; a post-dated
    ``("close", id)`` record triggers the emission at expiry and migrates
    with the bin.
    """
    out = []
    for record in auctions:
        if isinstance(record, Auction):
            state[record.id] = [record, record.initial_bid]
            notificator.notify_at(record.expires, ("close", record.id))
        else:
            _, auction_id = record
            auction, price = state.pop(auction_id)
            if price >= auction.reserve:
                out.append(
                    ClosedAuction(
                        auction=auction.id,
                        seller=auction.seller,
                        category=auction.category,
                        price=price,
                        expires=auction.expires,
                    )
                )
    for bid in bids:
        entry = state.get(bid.auction)
        if (
            entry is not None
            and bid.date_time < entry[0].expires
            and bid.price > entry[1]
        ):
            entry[1] = bid.price
    return out


def closed_auctions_megaphone(
    control, streams, cfg, num_bins, initial=None, **state_opts
):
    """The migrateable winning-bid subplan."""
    from repro.megaphone.api import binary

    return binary(
        control,
        streams.auctions,
        streams.bids,
        exchange1=lambda a: a.id,
        exchange2=lambda b: b.auction,
        fold=closed_auctions_fold,
        num_bins=num_bins,
        initial=initial,
        name="closed_auctions",
        state_size_fn=lambda s: 48.0 * cfg.state_bytes_scale * len(s),
        **state_opts,
    )
