"""NEXMark Query 8: monitor new users (tumbling-window join).

Join persons who registered in a window with sellers who opened an auction
in the same window.  With twelve-hour windows the retained state is
massive; the paper dilates time by 79x so reconfiguration at 800 s lands
around 17.5 h of event time (Figure 12).
"""

from __future__ import annotations

from repro.nexmark.config import NexmarkConfig
from repro.nexmark.queries.common import NexmarkStreams
from repro.timely.graph import Exchange


def _window_of(time_ms: int, window_ms: int) -> int:
    return time_ms - time_ms % window_ms


class _NativeQ8Logic:
    """Hand-tuned windowed join: person id == auction seller."""

    def __init__(self, cfg: NexmarkConfig, worker_id: int) -> None:
        self._cfg = cfg
        # window start -> (persons set, emitted seller set)
        self._windows: dict[int, tuple[set, set]] = {}

    def _window(self, ctx, start: int):
        entry = self._windows.get(start)
        if entry is None:
            entry = self._windows[start] = (set(), set())
            # Clean up when the window closes.
            ctx.notify_at(start + self._cfg.q8_window_ms)
        return entry

    def on_input(self, ctx, port, time, records):
        window_ms = self._cfg.q8_window_ms
        out = []
        if port == 0:
            for person in records:
                start = _window_of(person.date_time, window_ms)
                self._window(ctx, start)[0].add(person.id)
        else:
            for auction in records:
                start = _window_of(auction.date_time, window_ms)
                persons, emitted = self._window(ctx, start)
                if auction.seller in persons and auction.seller not in emitted:
                    emitted.add(auction.seller)
                    out.append((start, auction.seller))
        if out:
            ctx.send(0, time, out)

    def on_notify(self, ctx, time):
        self._windows.pop(time - self._cfg.q8_window_ms, None)


def native(streams: NexmarkStreams, cfg: NexmarkConfig):
    """Hand-tuned Q8."""
    out = streams.persons.binary(
        streams.auctions,
        "q8",
        lambda worker_id: _NativeQ8Logic(cfg, worker_id),
        pact1=Exchange(lambda p: p.id),
        pact2=Exchange(lambda a: a.seller),
    )
    return out, None


def megaphone(control, streams: NexmarkStreams, cfg: NexmarkConfig,
              num_bins: int, initial=None, **state_opts):
    """Megaphone Q8: the windowed join as one migrateable binary operator."""
    from repro.megaphone.api import binary

    window_ms = cfg.q8_window_ms

    def fold(time, persons, auctions, state, notificator):
        out = []
        for record in persons:
            if isinstance(record, tuple):  # post-dated ("drop", window_start)
                state.pop(record[1], None)
                continue
            start = _window_of(record.date_time, window_ms)
            entry = state.get(start)
            if entry is None:
                entry = state[start] = (set(), set())
                notificator.notify_at(start + window_ms, ("drop", start))
            entry[0].add(record.id)
        for auction in auctions:
            start = _window_of(auction.date_time, window_ms)
            entry = state.get(start)
            if entry is None:
                entry = state[start] = (set(), set())
                notificator.notify_at(start + window_ms, ("drop", start))
            people, emitted = entry
            if auction.seller in people and auction.seller not in emitted:
                emitted.add(auction.seller)
                out.append((start, auction.seller))
        return out

    op = binary(
        control, streams.persons, streams.auctions,
        exchange1=lambda p: p.id,
        exchange2=lambda a: a.seller,
        fold=fold, num_bins=num_bins, initial=initial, name="q8",
        state_size_fn=lambda s: 32.0 * cfg.state_bytes_scale * sum(
            len(people) + len(emitted) for people, emitted in s.values()
        ),
        **state_opts,
    )
    return op.output, op
