"""NEXMark Query 4: average closing price per category.

Closed auctions (the winning-bid subplan shared with Q6) feed a per-category
running average.  The active-auction state is bounded because the generator
keeps a fixed number of auctions open (paper Figure 8).
"""

from __future__ import annotations

from repro.nexmark.config import NexmarkConfig
from repro.nexmark.queries.common import (
    NexmarkStreams,
    closed_auctions_megaphone,
    closed_auctions_native,
)
from repro.timely.graph import Exchange


class _NativeCategoryAverageLogic:
    """Hand-tuned per-category running average."""

    def __init__(self, worker_id: int) -> None:
        self._sums: dict[int, list] = {}

    def on_input(self, ctx, port, time, records):
        out = []
        for closed in records:
            entry = self._sums.setdefault(closed.category, [0, 0])
            entry[0] += closed.price
            entry[1] += 1
            out.append((closed.category, entry[0] // entry[1]))
        ctx.send(0, time, out)


def native(streams: NexmarkStreams, cfg: NexmarkConfig):
    """Hand-tuned Q4."""
    closed = closed_auctions_native(streams)
    out = closed.unary(
        "q4_avg",
        lambda worker_id: _NativeCategoryAverageLogic(worker_id),
        pact=Exchange(lambda c: c.category),
    )
    return out, None


def megaphone(control, streams: NexmarkStreams, cfg: NexmarkConfig,
              num_bins: int, initial=None, **state_opts):
    """Megaphone Q4: migrateable winning-bid subplan + category average.

    The migrated operator is the auction-keyed accumulator (the query's
    main state holder); the small category average stays native, as in the
    paper where only the main operator of each dataflow migrates.
    """
    op = closed_auctions_megaphone(
        control, streams, cfg, num_bins, initial, **state_opts
    )
    out = op.output.unary(
        "q4_avg",
        lambda worker_id: _NativeCategoryAverageLogic(worker_id),
        pact=Exchange(lambda c: c.category),
    )
    return out, op
