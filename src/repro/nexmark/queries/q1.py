"""NEXMark Query 1: currency conversion (stateless map).

Every bid's price is converted from dollars to euros.  The query holds no
state, so migrations move nothing — the paper uses it (Figure 5) to show
the harness baseline.
"""

from __future__ import annotations

from repro.nexmark.config import NexmarkConfig
from repro.nexmark.model import Bid
from repro.nexmark.queries.common import NexmarkStreams

RATE_NUM = 908
RATE_DEN = 1000


def _convert(bid: Bid) -> Bid:
    return Bid(
        auction=bid.auction,
        bidder=bid.bidder,
        price=bid.price * RATE_NUM // RATE_DEN,
        date_time=bid.date_time,
    )


def native(streams: NexmarkStreams, cfg: NexmarkConfig):
    """Hand-tuned Q1."""
    return streams.bids.map(_convert, name="q1"), None


def megaphone(control, streams: NexmarkStreams, cfg: NexmarkConfig,
              num_bins: int, initial=None, **state_opts):
    """Megaphone Q1: the same map expressed as a (stateless) stateful op."""
    from repro.megaphone.api import unary

    def fold(time, data, state, notificator):
        return [_convert(bid) for bid in data]

    op = unary(
        control, streams.bids,
        exchange=lambda b: b.auction,
        fold=fold, num_bins=num_bins, initial=initial, name="q1",
        **state_opts,
    )
    return op.output, op
