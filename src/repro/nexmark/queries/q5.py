"""NEXMark Query 5: hot items (sliding-window count).

Report, every period, the auctions with the most bids over the trailing
window.  The paper dilates time so the sixty-minute window ticks once per
second of processing time (Figure 9); the window and period come from the
NexmarkConfig.  State: up to window/period counts per auction, so counts
can be both reported and retracted as the window slides.
"""

from __future__ import annotations

from repro.nexmark.config import NexmarkConfig
from repro.nexmark.queries.common import NexmarkStreams
from repro.timely.graph import Exchange


def _bucket(time_ms: int, period_ms: int) -> int:
    return time_ms - time_ms % period_ms


class _NativeHotItemsLogic:
    """Hand-tuned sliding-window bid counter, keyed by auction."""

    def __init__(self, cfg: NexmarkConfig, worker_id: int) -> None:
        self._cfg = cfg
        self._counts: dict[int, dict[int, int]] = {}  # auction -> bucket -> n
        self._flushes: set[int] = set()

    def on_input(self, ctx, port, time, records):
        cfg = self._cfg
        for bid in records:
            bucket = _bucket(bid.date_time, cfg.q5_period_ms)
            buckets = self._counts.setdefault(bid.auction, {})
            buckets[bucket] = buckets.get(bucket, 0) + 1
            flush_at = bucket + cfg.q5_period_ms
            if flush_at not in self._flushes:
                self._flushes.add(flush_at)
                ctx.notify_at(flush_at)

    def on_notify(self, ctx, time):
        cfg = self._cfg
        self._flushes.discard(time)
        horizon = time - cfg.q5_window_ms
        best_auction, best_count = None, 0
        for auction, buckets in list(self._counts.items()):
            stale = [b for b in buckets if b < horizon]
            for b in stale:
                del buckets[b]
            if not buckets:
                del self._counts[auction]
                continue
            # Only fully closed buckets (strictly before the window end)
            # count; later buckets may still be filling.
            total = sum(n for b, n in buckets.items() if b < time)
            if total > best_count:
                best_auction, best_count = auction, total
        if best_auction is not None:
            ctx.send(0, time, [(time, best_auction, best_count)])
        if self._counts:
            # Keep reporting every period while any counts remain in the
            # window, even without fresh bids (granularity-invariant).
            flush_at = time + cfg.q5_period_ms
            if flush_at not in self._flushes:
                self._flushes.add(flush_at)
                ctx.notify_at(flush_at)


class _NativeGlobalMaxLogic:
    """Pick the overall winner among per-worker candidates.

    Candidate records are internal aggregates (one per reporting unit per
    window), far rarer and cheaper than data records; their cost is a
    progress update, not a full record application.
    """

    def __init__(self, worker_id: int) -> None:
        self._candidates: dict[int, tuple] = {}

    def input_cost(self, ctx, port, records, size_bytes):
        return len(records) * ctx.cost.progress_update_cost

    def on_input(self, ctx, port, time, records):
        for window, auction, count in records:
            best = self._candidates.get(window)
            if best is None or count > best[1]:
                self._candidates[window] = (auction, count)
                ctx.notify_at(window)

    def on_notify(self, ctx, time):
        best = self._candidates.pop(time, None)
        if best is not None:
            ctx.send(0, time, [(time,) + best])


def native(streams: NexmarkStreams, cfg: NexmarkConfig):
    """Hand-tuned Q5."""
    local = streams.bids.unary(
        "q5_counts",
        lambda worker_id: _NativeHotItemsLogic(cfg, worker_id),
        pact=Exchange(lambda b: b.auction),
    )
    out = local.unary(
        "q5_max",
        lambda worker_id: _NativeGlobalMaxLogic(worker_id),
        pact=Exchange(lambda r: 0),
    )
    return out, None


def megaphone(control, streams: NexmarkStreams, cfg: NexmarkConfig,
              num_bins: int, initial=None, **state_opts):
    """Megaphone Q5: the windowed counter is the migrateable operator."""
    from repro.megaphone.api import unary

    def fold(time, data, state, notificator):
        out = []
        for record in data:
            if isinstance(record, tuple):  # post-dated ("flush", window_end)
                _, window_end = record
                state.get("flushes", set()).discard(window_end)
                horizon = window_end - cfg.q5_window_ms
                counts = state.get("counts", {})
                best_auction, best_count = None, 0
                for auction, buckets in list(counts.items()):
                    for b in [b for b in buckets if b < horizon]:
                        del buckets[b]
                    if not buckets:
                        del counts[auction]
                        continue
                    total = sum(n for b, n in buckets.items() if b < window_end)
                    if total > best_count:
                        best_auction, best_count = auction, total
                if best_auction is not None:
                    out.append((window_end, best_auction, best_count))
                if counts:
                    flushes = state.setdefault("flushes", set())
                    next_flush = window_end + cfg.q5_period_ms
                    if next_flush not in flushes:
                        flushes.add(next_flush)
                        notificator.notify_at(next_flush, ("flush", next_flush))
            else:
                bucket = _bucket(record.date_time, cfg.q5_period_ms)
                counts = state.setdefault("counts", {})
                buckets = counts.setdefault(record.auction, {})
                buckets[bucket] = buckets.get(bucket, 0) + 1
                flush_at = bucket + cfg.q5_period_ms
                flushes = state.setdefault("flushes", set())
                if flush_at not in flushes:
                    flushes.add(flush_at)
                    notificator.notify_at(flush_at, ("flush", flush_at))
        return out

    op = unary(
        control, streams.bids,
        exchange=lambda b: b.auction,
        fold=fold, num_bins=num_bins, initial=initial, name="q5",
        state_size_fn=lambda s: 16.0 * cfg.state_bytes_scale * sum(
            len(b) for b in s.get("counts", {}).values()
        ),
        **state_opts,
    )
    out = op.output.unary(
        "q5_max",
        lambda worker_id: _NativeGlobalMaxLogic(worker_id),
        pact=Exchange(lambda r: 0),
    )
    return out, op
