"""NEXMark Query 7: highest bid per window.

Each window, report the highest bid.  Worker-local maxima are exchanged to
a single worker for the global aggregate; state is a single value, so
migrations are essentially free (paper Figure 11).
"""

from __future__ import annotations

from repro.nexmark.config import NexmarkConfig
from repro.nexmark.queries.common import NexmarkStreams
from repro.timely.graph import Exchange


def _window_end(time_ms: int, window_ms: int) -> int:
    return time_ms - time_ms % window_ms + window_ms


class _NativeLocalMaxLogic:
    """Per-worker windowed maximum."""

    def __init__(self, cfg: NexmarkConfig, worker_id: int) -> None:
        self._cfg = cfg
        self._best: dict[int, tuple] = {}

    def on_input(self, ctx, port, time, records):
        for bid in records:
            end = _window_end(bid.date_time, self._cfg.q7_window_ms)
            best = self._best.get(end)
            if best is None:
                ctx.notify_at(end)
            if best is None or bid.price > best[1]:
                self._best[end] = (bid.auction, bid.price)

    def on_notify(self, ctx, time):
        best = self._best.pop(time, None)
        if best is not None:
            ctx.send(0, time, [(time,) + best])


class _NativeGlobalMaxLogic:
    """Overall maximum across the per-worker candidates.

    Candidates are internal aggregates: charged as progress updates.
    """

    def __init__(self, worker_id: int) -> None:
        self._best: dict[int, tuple] = {}

    def input_cost(self, ctx, port, records, size_bytes):
        return len(records) * ctx.cost.progress_update_cost

    def on_input(self, ctx, port, time, records):
        for window, auction, price in records:
            best = self._best.get(window)
            if best is None:
                ctx.notify_at(window)
            if best is None or price > best[1]:
                self._best[window] = (auction, price)

    def on_notify(self, ctx, time):
        best = self._best.pop(time, None)
        if best is not None:
            ctx.send(0, time, [(time,) + best])


def native(streams: NexmarkStreams, cfg: NexmarkConfig):
    """Hand-tuned Q7."""
    local = streams.bids.unary(
        "q7_local",
        lambda worker_id: _NativeLocalMaxLogic(cfg, worker_id),
        pact=Exchange(lambda b: b.auction),
    )
    out = local.unary(
        "q7_max",
        lambda worker_id: _NativeGlobalMaxLogic(worker_id),
        pact=Exchange(lambda r: 0),
    )
    return out, None


def megaphone(control, streams: NexmarkStreams, cfg: NexmarkConfig,
              num_bins: int, initial=None, **state_opts):
    """Megaphone Q7: the local maximum is the migrateable operator."""
    from repro.megaphone.api import unary

    def fold(time, data, state, notificator):
        out = []
        for record in data:
            if isinstance(record, tuple):  # post-dated ("emit", window_end)
                _, end = record
                best = state.pop(end, None)
                if best is not None:
                    out.append((end,) + best)
            else:
                end = _window_end(record.date_time, cfg.q7_window_ms)
                best = state.get(end)
                if best is None:
                    notificator.notify_at(end, ("emit", end))
                if best is None or record.price > best[1]:
                    state[end] = (record.auction, record.price)
        return out

    op = unary(
        control, streams.bids,
        exchange=lambda b: b.auction,
        fold=fold, num_bins=num_bins, initial=initial, name="q7",
        state_size_fn=lambda s: 24.0 * cfg.state_bytes_scale * len(s),
        **state_opts,
    )
    out = op.output.unary(
        "q7_max",
        lambda worker_id: _NativeGlobalMaxLogic(worker_id),
        pact=Exchange(lambda r: 0),
    )
    return out, op
