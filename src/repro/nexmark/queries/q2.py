"""NEXMark Query 2: selection (stateless filter).

Keep bids on a sample of auctions (auction id divisible by a constant).
Stateless; Figure 6's baseline.
"""

from __future__ import annotations

from repro.nexmark.config import NexmarkConfig
from repro.nexmark.queries.common import NexmarkStreams

DIVISOR = 123


def native(streams: NexmarkStreams, cfg: NexmarkConfig):
    """Hand-tuned Q2."""
    out = streams.bids.filter(lambda b: b.auction % DIVISOR == 0, name="q2")
    return out, None


def megaphone(control, streams: NexmarkStreams, cfg: NexmarkConfig,
              num_bins: int, initial=None, **state_opts):
    """Megaphone Q2."""
    from repro.megaphone.api import unary

    def fold(time, data, state, notificator):
        return [b for b in data if b.auction % DIVISOR == 0]

    op = unary(
        control, streams.bids,
        exchange=lambda b: b.auction,
        fold=fold, num_bins=num_bins, initial=initial, name="q2",
        **state_opts,
    )
    return op.output, op
