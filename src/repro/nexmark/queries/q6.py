"""NEXMark Query 6: average selling price per seller (last ten auctions).

Shares the winning-bid subplan with Q4; the per-seller operator keeps a
bounded list of the ten most recent closing prices, but the set of sellers
grows without bound (paper Figure 10).
"""

from __future__ import annotations

from collections import deque

from repro.nexmark.config import NexmarkConfig
from repro.nexmark.queries.common import (
    NexmarkStreams,
    closed_auctions_megaphone,
    closed_auctions_native,
)
from repro.timely.graph import Exchange

LAST_N = 10


class _NativeSellerAverageLogic:
    """Hand-tuned per-seller trailing average.

    "Last ten" is order-sensitive, so same-time closings are buffered and
    applied in deterministic (auction id) order at the notification.
    """

    def __init__(self, worker_id: int) -> None:
        self._prices: dict[int, deque] = {}
        self._pending: dict[int, list] = {}

    def on_input(self, ctx, port, time, records):
        if time not in self._pending:
            self._pending[time] = []
            ctx.notify_at(time)
        self._pending[time].extend(records)

    def on_notify(self, ctx, time):
        out = []
        for closed in sorted(self._pending.pop(time, ()), key=lambda c: c.auction):
            prices = self._prices.get(closed.seller)
            if prices is None:
                prices = self._prices[closed.seller] = deque(maxlen=LAST_N)
            prices.append(closed.price)
            out.append((closed.seller, sum(prices) // len(prices)))
        if out:
            ctx.send(0, time, out)


def native(streams: NexmarkStreams, cfg: NexmarkConfig):
    """Hand-tuned Q6."""
    closed = closed_auctions_native(streams)
    out = closed.unary(
        "q6_avg",
        lambda worker_id: _NativeSellerAverageLogic(worker_id),
        pact=Exchange(lambda c: c.seller),
    )
    return out, None


def megaphone(control, streams: NexmarkStreams, cfg: NexmarkConfig,
              num_bins: int, initial=None, **state_opts):
    """Megaphone Q6: migrateable subplan + native trailing average."""
    op = closed_auctions_megaphone(
        control, streams, cfg, num_bins, initial, **state_opts
    )
    out = op.output.unary(
        "q6_avg",
        lambda worker_id: _NativeSellerAverageLogic(worker_id),
        pact=Exchange(lambda c: c.seller),
    )
    return out, op
