"""NEXMark Query 3: local item suggestion (incremental two-input join).

Join persons from selected states with category-10 auctions, keyed by
person id = auction seller.  Both relations are retained forever, so state
grows without bound (paper Figure 7).
"""

from __future__ import annotations

from repro.nexmark.config import NexmarkConfig
from repro.nexmark.queries.common import NexmarkStreams
from repro.timely.graph import Exchange

# Routing keys for the columnar splitter; these must mirror the exchange
# functions of the megaphone variant below (the columnar F routes on the
# precomputed key column).
COLUMN_KEYS = {
    "persons": lambda p: p.id,
    "auctions": lambda a: a.seller,
    "bids": lambda b: b.auction,
}


class _NativeQ3Logic:
    """Hand-tuned incremental join: person id == auction seller."""

    def __init__(self, cfg: NexmarkConfig, worker_id: int) -> None:
        self._cfg = cfg
        self._persons: dict[int, tuple] = {}
        self._auctions: dict[int, list] = {}

    def on_input(self, ctx, port, time, records):
        out = []
        if port == 0:
            for person in records:
                if person.state not in self._cfg.filtered_states:
                    continue
                info = (person.name, person.city, person.state)
                self._persons[person.id] = info
                for auction_id in self._auctions.get(person.id, ()):
                    out.append(info + (auction_id,))
        else:
            for auction in records:
                if auction.category != self._cfg.filtered_category:
                    continue
                self._auctions.setdefault(auction.seller, []).append(auction.id)
                info = self._persons.get(auction.seller)
                if info is not None:
                    out.append(info + (auction.id,))
        if out:
            ctx.send(0, time, out)


def native(streams: NexmarkStreams, cfg: NexmarkConfig):
    """Hand-tuned Q3."""
    out = streams.persons.binary(
        streams.auctions,
        "q3",
        lambda worker_id: _NativeQ3Logic(cfg, worker_id),
        pact1=Exchange(lambda p: p.id),
        pact2=Exchange(lambda a: a.seller),
    )
    return out, None


def megaphone(control, streams: NexmarkStreams, cfg: NexmarkConfig,
              num_bins: int, initial=None, **state_opts):
    """Megaphone Q3: the join as one migrateable binary operator."""
    from repro.megaphone.api import binary

    def fold(time, persons, auctions, state, notificator):
        out = []
        people = state.setdefault("p", {})
        listings = state.setdefault("a", {})
        for person in persons:
            if person.state not in cfg.filtered_states:
                continue
            info = (person.name, person.city, person.state)
            people[person.id] = info
            out.extend(info + (aid,) for aid in listings.get(person.id, ()))
        for auction in auctions:
            if auction.category != cfg.filtered_category:
                continue
            listings.setdefault(auction.seller, []).append(auction.id)
            info = people.get(auction.seller)
            if info is not None:
                out.append(info + (auction.id,))
        return out

    op = binary(
        control, streams.persons, streams.auctions,
        exchange1=lambda p: p.id,
        exchange2=lambda a: a.seller,
        fold=fold, num_bins=num_bins, initial=initial, name="q3",
        state_size_fn=lambda s: 64.0 * cfg.state_bytes_scale
        * (len(s.get("p", ())) + len(s.get("a", ()))),
        **state_opts,
    )
    return op.output, op
