"""The eight NEXMark standing queries, each in two variants.

``native(streams, cfg)`` is the hand-tuned timely implementation;
``megaphone(control, streams, cfg, num_bins, initial=None)`` is built on
Megaphone's reconfigurable operator interface.  Both return
``(output_stream, migrateable_operator_or_None)``.
"""

from repro.nexmark.queries import q1, q2, q3, q4, q5, q6, q7, q8
from repro.nexmark.queries.common import (
    ClosedAuction,
    NexmarkStreams,
    closed_auctions_megaphone,
    closed_auctions_native,
    split_events,
)

QUERIES = {1: q1, 2: q2, 3: q3, 4: q4, 5: q5, 6: q6, 7: q7, 8: q8}

__all__ = [
    "ClosedAuction",
    "NexmarkStreams",
    "QUERIES",
    "closed_auctions_megaphone",
    "closed_auctions_native",
    "split_events",
    "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8",
]
