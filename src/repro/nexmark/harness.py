"""NEXMark experiment harness: run any query under load and migrations.

Bridges the query implementations to the generic
:class:`repro.harness.experiment.MigrationExperiment`: the builder splits
the generated event stream into the three NEXMark relations, instantiates
the chosen query in its native or Megaphone variant, and wires the latency
probe to the query's output.
"""

from __future__ import annotations

from typing import Optional

from repro.harness.experiment import ExperimentConfig, ExperimentResult, MigrationExperiment
from repro.nexmark.config import NexmarkConfig
from repro.nexmark.generator import make_generator
from repro.nexmark.queries import QUERIES
from repro.nexmark.queries.common import split_events, split_events_columnar

STATEFUL_QUERIES = (3, 4, 5, 6, 7, 8)


def run_nexmark_experiment(
    query: int,
    cfg: ExperimentConfig,
    nexmark: Optional[NexmarkConfig] = None,
    native: Optional[bool] = None,
) -> ExperimentResult:
    """Run NEXMark query ``query`` (1-8) under ``cfg``.

    ``native`` overrides ``cfg.native``.  Stateful queries use the
    Megaphone variant by default; migrations (if scheduled in ``cfg``)
    apply to the query's main operator.
    """
    if query not in QUERIES:
        raise ValueError(f"unknown NEXMark query {query}; implemented: {sorted(QUERIES)}")
    if nexmark is None:
        nexmark = NexmarkConfig(dilation=cfg.dilation)
    use_native = cfg.native if native is None else native
    module = QUERIES[query]

    def build(df, control, data, config):
        column_keys = getattr(module, "COLUMN_KEYS", None)
        if not use_native and column_keys is not None:
            # Queries that declare routing keys get columnar relation
            # streams; the megaphone F then routes whole columns.
            streams = split_events_columnar(data, column_keys)
        else:
            streams = split_events(data)
        if use_native:
            out, _op = module.native(streams, nexmark)
            control.sink(name="control_sink")
            op = None
        else:
            # Elastic runs start bins on the active prefix only; the
            # default (initial=None) is round-robin over every worker.
            initial = None
            if config.initial_active != config.num_workers:
                from repro.megaphone.control import BinnedConfiguration

                initial = BinnedConfiguration.round_robin(
                    config.num_bins, config.initial_active
                )
            out, op = module.megaphone(
                control, streams, nexmark, config.num_bins,
                initial=initial,
                state_backend=config.state_backend,
                codec=config.codec,
                backend_options=config.backend_options(),
            )

        state_bytes_fn = None
        if op is not None:
            name = op.config.name

            def state_bytes_fn(worker: int, _name=name) -> tuple:
                runtime = df._runtime
                store = runtime.workers[worker].shared.get(f"megaphone:{_name}")
                if store is None:
                    return (0, 0)
                return (store.resident_state_size(), store.spilled_state_size())

        return out, op, state_bytes_fn

    generator = make_generator(nexmark, cfg.num_workers, seed=cfg.seed)
    record_extra = None
    if cfg.record_log:
        # Replay re-executes from the log header alone, so it needs the
        # query number and the full NexmarkConfig alongside the generic
        # experiment config.
        from dataclasses import asdict

        record_extra = {
            "workload_kind": "nexmark",
            "query": query,
            "nexmark": asdict(nexmark),
        }
    experiment = MigrationExperiment(
        cfg, build, generator, record_extra=record_extra
    )
    return experiment.run()
