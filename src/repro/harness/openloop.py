"""Open-loop load generation.

The paper's harness "supplies the input at a specified rate, even if the
system itself becomes less responsive (e.g., during a migration)".  In the
simulation this is natural: injections are scheduled at fixed simulated
times and merely enqueue work; a backlogged worker falls behind, and the
latency recorder sees the lag through the output frontier.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.harness.latency import EpochLatencyRecorder
from repro.timely.dataflow import InputGroup, Runtime

# generator(worker_id, epoch_ms, count) -> list of records
Generator = Callable[[int, int, int], list]


class OpenLoopSource:
    """Injects ``rate`` records per second, split across all workers.

    Every ``granularity_ms`` of simulated time, each worker's handle
    receives its share of the interval's records with the interval's epoch
    timestamp, then advances to the next epoch.  The injected counts are
    reported to the latency recorder for weighting.
    """

    def __init__(
        self,
        runtime: Runtime,
        group: InputGroup,
        generator: Generator,
        rate: float,
        duration_s: float,
        granularity_ms: int = 10,
        recorder: Optional[EpochLatencyRecorder] = None,
        start_s: float = 0.0,
        dilation: int = 1,
    ) -> None:
        self.runtime = runtime
        self.group = group
        self.generator = generator
        self.rate = rate
        self.duration_s = duration_s
        self.granularity_ms = granularity_ms
        self.recorder = recorder
        self.start_s = start_s
        self.dilation = dilation
        # An int: injected counts are exact, never float-accumulated.
        self._records_injected = 0
        self._carry = 0.0

    @property
    def records_injected(self) -> int:
        """Total records injected so far."""
        return self._records_injected

    def start(self) -> None:
        """Schedule all injection ticks."""
        tick_s = self.granularity_ms / 1000.0
        n_ticks = int(round(self.duration_s / tick_s))
        per_tick_exact = self.rate * tick_s
        sim = self.runtime.sim
        for i in range(n_ticks):
            at = self.start_s + i * tick_s
            sim.schedule_at(at, self._make_tick(i, per_tick_exact))
        sim.schedule_at(self.start_s + n_ticks * tick_s, self.group.close_all)

    def _make_tick(self, index: int, per_tick_exact: float):
        def tick() -> None:
            epoch_ms = int(
                round((self.start_s * 1000) + index * self.granularity_ms)
            ) * self.dilation
            self._carry += per_tick_exact
            count = int(self._carry)
            self._carry -= count
            # A crashed process closes its workers' input handles; the load
            # keeps flowing through the survivors (open-loop means the
            # offered rate does not drop because part of the cluster did).
            open_handles = [
                (w, handle)
                for w, handle in enumerate(self.group.handles())
                if handle.epoch is not None
            ]
            if not open_handles:
                return
            per_worker = count // len(open_handles)
            extra = count % len(open_handles)
            total = 0
            for i, (w, handle) in enumerate(open_handles):
                n = per_worker + (1 if i < extra else 0)
                if n > 0:
                    records = self.generator(w, epoch_ms, n)
                    handle.send(epoch_ms, records)
                    total += len(records)
                handle.advance_to(epoch_ms + self.granularity_ms * self.dilation)
            self._records_injected += total
            if self.recorder is not None:
                self.recorder.note_injected(epoch_ms, max(total, 1))

        return tick


class Lcg:
    """Deterministic 64-bit linear congruential generator (per worker)."""

    MULT = 6364136223846793005
    INC = 1442695040888963407
    MASK = (1 << 64) - 1

    def __init__(self, seed: int) -> None:
        self.state = (seed * 0x9E3779B97F4A7C15 + 1) & self.MASK

    def next(self) -> int:
        """The next pseudo-random 48-bit value."""
        self.state = (self.state * self.MULT + self.INC) & self.MASK
        return self.state >> 16
