"""Open-loop load generation.

The paper's harness "supplies the input at a specified rate, even if the
system itself becomes less responsive (e.g., during a migration)".  In the
simulation this is natural: injections are scheduled at fixed simulated
times and merely enqueue work; a backlogged worker falls behind, and the
latency recorder sees the lag through the output frontier.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.harness.latency import EpochLatencyRecorder
from repro.timely.dataflow import InputGroup, Runtime

# generator(worker_id, epoch_ms, count) -> list of records
Generator = Callable[[int, int, int], list]


class OpenLoopSource:
    """Injects ``rate`` records per second, split across all workers.

    Every ``granularity_ms`` of simulated time, each worker's handle
    receives its share of the interval's records with the interval's epoch
    timestamp, then advances to the next epoch.  The injected counts are
    reported to the latency recorder for weighting.

    ``workers`` (sharded mode) restricts the *driven* handles to the listed
    resident workers: the global per-worker allocation arithmetic is still
    computed over the full worker set — identically in every shard — but
    only resident handles are sent/advanced/closed (each shard's generator
    LCG state is per-worker, so skipping non-residents does not perturb the
    streams).  Non-resident handles are never touched; their capability
    movements arrive through the shard progress broadcast instead, and
    locally closing them would double-count the broadcast decrement.
    """

    def __init__(
        self,
        runtime: Runtime,
        group: InputGroup,
        generator: Generator,
        rate: float,
        duration_s: float,
        granularity_ms: int = 10,
        recorder: Optional[EpochLatencyRecorder] = None,
        start_s: float = 0.0,
        dilation: int = 1,
        workers: Optional[list] = None,
    ) -> None:
        self.runtime = runtime
        self.group = group
        self.generator = generator
        self.rate = rate
        self.duration_s = duration_s
        self.granularity_ms = granularity_ms
        self.recorder = recorder
        self.start_s = start_s
        self.dilation = dilation
        self.workers = sorted(workers) if workers is not None else None
        # An int: injected counts are exact, never float-accumulated.
        self._records_injected = 0
        self._carry = 0.0

    @property
    def records_injected(self) -> int:
        """Total records injected so far."""
        return self._records_injected

    def start(self) -> None:
        """Schedule all injection ticks."""
        tick_s = self.granularity_ms / 1000.0
        n_ticks = int(round(self.duration_s / tick_s))
        per_tick_exact = self.rate * tick_s
        sim = self.runtime.sim
        for i in range(n_ticks):
            at = self.start_s + i * tick_s
            sim.schedule_at(at, self._make_tick(i, per_tick_exact))
        close = (
            self.group.close_all if self.workers is None else self._close_resident
        )
        sim.schedule_at(self.start_s + n_ticks * tick_s, close)

    def _close_resident(self) -> None:
        handles = self.group.handles()
        for w in self.workers:
            handles[w].close()

    def _make_tick(self, index: int, per_tick_exact: float):
        if self.workers is not None:
            return self._make_resident_tick(index, per_tick_exact)

        def tick() -> None:
            epoch_ms = int(
                round((self.start_s * 1000) + index * self.granularity_ms)
            ) * self.dilation
            self._carry += per_tick_exact
            count = int(self._carry)
            self._carry -= count
            # A crashed process closes its workers' input handles; the load
            # keeps flowing through the survivors (open-loop means the
            # offered rate does not drop because part of the cluster did).
            open_handles = [
                (w, handle)
                for w, handle in enumerate(self.group.handles())
                if handle.epoch is not None
            ]
            if not open_handles:
                return
            per_worker = count // len(open_handles)
            extra = count % len(open_handles)
            total = 0
            for i, (w, handle) in enumerate(open_handles):
                n = per_worker + (1 if i < extra else 0)
                if n > 0:
                    records = self.generator(w, epoch_ms, n)
                    handle.send(epoch_ms, records)
                    total += len(records)
                handle.advance_to(epoch_ms + self.granularity_ms * self.dilation)
            self._records_injected += total
            if self.recorder is not None:
                self.recorder.note_injected(epoch_ms, max(total, 1))

        return tick

    def _make_resident_tick(self, index: int, per_tick_exact: float):
        """Sharded tick: full-cluster allocation, resident-only injection.

        The division of ``count`` over workers matches the legacy tick with
        every handle open (sharded mode excludes chaos, so handles normally
        only close at end-of-input, after the final tick).  Should a
        resident handle close mid-run anyway, its share is not silently
        dropped: the residual is recomputed over the still-open resident
        handles (each drawing extra records from its own generator stream,
        so the redistribution is deterministic per shard) — without this
        the per-worker split would stay frozen at the full-universe
        allocation and a closed handle would skew the offered load.
        ``records_injected`` counts the local share; the recorder (resident
        on shard 0 only) is told the *global* count, which every shard
        computes identically.
        """
        resident = self.workers

        def tick() -> None:
            epoch_ms = int(
                round((self.start_s * 1000) + index * self.granularity_ms)
            ) * self.dilation
            self._carry += per_tick_exact
            count = int(self._carry)
            self._carry -= count
            handles = self.group.handles()
            num_workers = len(handles)
            per_worker = count // num_workers
            extra = count % num_workers
            total = 0
            residual = 0
            open_resident = []
            advance_to = epoch_ms + self.granularity_ms * self.dilation
            for w in resident:
                n = per_worker + (1 if w < extra else 0)
                handle = handles[w]
                if handle.epoch is None:
                    residual += n
                    continue
                open_resident.append((w, handle))
                if n > 0:
                    records = self.generator(w, epoch_ms, n)
                    handle.send(epoch_ms, records)
                    total += len(records)
            if residual and open_resident:
                per_open = residual // len(open_resident)
                spill = residual % len(open_resident)
                for i, (w, handle) in enumerate(open_resident):
                    n = per_open + (1 if i < spill else 0)
                    if n > 0:
                        records = self.generator(w, epoch_ms, n)
                        handle.send(epoch_ms, records)
                        total += len(records)
            for _w, handle in open_resident:
                handle.advance_to(advance_to)
            self._records_injected += total
            if self.recorder is not None:
                self.recorder.note_injected(epoch_ms, max(count, 1))

        return tick


class ElasticOpenLoopSource(OpenLoopSource):
    """Open-loop source over a *dynamic* feed set with a fixed record universe.

    Elastic runs change which workers ingest mid-run, but the offered load
    must not depend on membership history — a scaling run's final state is
    pinned against a static-membership twin.  So record content is drawn
    from ``num_workers`` fixed **virtual streams** (one deterministic
    generator stream per provisioned slot, exactly the allocation a fully
    open legacy tick would compute), and virtual stream ``v`` is carried by
    the ``v % len(feed)``-th currently-fed open handle.  Membership changes
    therefore alter only *which handle carries* a record — never the
    record, its count, or its epoch — and the downstream exchange routes by
    key, so per-bin state is byte-identical across membership histories.

    Every provisioned handle that is still open (standby slots included) is
    advanced each tick, keeping input frontiers on the epoch clock; only
    *fed* handles receive records.  ``open_worker`` adds a slot to the feed
    set (joins), ``remove_worker`` removes it without closing the handle
    (drain start — the coordinator closes the handle after the evacuation's
    frontier passes).
    """

    def __init__(self, *args, active: Optional[list] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.workers is not None:
            raise ValueError("elastic source does not support sharded mode")
        if active is None:
            raise ValueError("elastic source needs the initially-fed workers")
        self._feed = sorted(active)

    @property
    def feed(self) -> list:
        """Workers currently receiving records, ascending."""
        return list(self._feed)

    def open_worker(self, worker: int) -> None:
        """Start feeding ``worker`` (a joining slot)."""
        if worker not in self._feed:
            self._feed.append(worker)
            self._feed.sort()

    def remove_worker(self, worker: int) -> None:
        """Stop feeding ``worker``; its handle stays open and advancing."""
        if worker in self._feed:
            self._feed.remove(worker)

    def _make_tick(self, index: int, per_tick_exact: float):
        def tick() -> None:
            epoch_ms = int(
                round((self.start_s * 1000) + index * self.granularity_ms)
            ) * self.dilation
            self._carry += per_tick_exact
            count = int(self._carry)
            self._carry -= count
            handles = self.group.handles()
            universe = len(handles)
            per_stream = count // universe
            extra = count % universe
            fed = [
                handles[w]
                for w in self._feed
                if handles[w].epoch is not None
            ]
            total = 0
            if fed:
                k = len(fed)
                for v in range(universe):
                    n = per_stream + (1 if v < extra else 0)
                    if n > 0:
                        records = self.generator(v, epoch_ms, n)
                        fed[v % k].send(epoch_ms, records)
                        total += len(records)
            advance_to = epoch_ms + self.granularity_ms * self.dilation
            for handle in handles:
                if handle.epoch is not None:
                    handle.advance_to(advance_to)
            self._records_injected += total
            if self.recorder is not None:
                self.recorder.note_injected(epoch_ms, max(total, 1))

        return tick


class Lcg:
    """Deterministic 64-bit linear congruential generator (per worker)."""

    MULT = 6364136223846793005
    INC = 1442695040888963407
    MASK = (1 << 64) - 1

    def __init__(self, seed: int) -> None:
        self.state = (seed * 0x9E3779B97F4A7C15 + 1) & self.MASK

    def next(self) -> int:
        """The next pseudo-random 48-bit value."""
        self.state = (self.state * self.MULT + self.INC) & self.MASK
        return self.state >> 16
