"""Experiment orchestration: the reproduction's equivalent of the paper's
test harness.

``run_count_experiment`` assembles the counting microbenchmark (paper
§5.2-5.3) on a simulated cluster, optionally schedules migrations, and
returns latency timelines, per-migration timings, and memory timelines.
NEXMark experiments reuse the same orchestration through
``MigrationExperiment`` with a custom dataflow builder.
"""

from __future__ import annotations

import time as wallclock
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.chaos.inject import ChaosInjector, FaultLog
from repro.chaos.plan import ChaosConfig
from repro.chaos.recovery import ConfigurationLedger, RecoveryCoordinator
from repro.chaos.watchdog import LivenessWatchdog, WatchdogConfig
from repro.elastic.autoscaler import Autoscaler, AutoscalerConfig
from repro.elastic.coordinator import ScalingCoordinator, ScalingReport
from repro.elastic.membership import MembershipDirectory
from repro.elastic.plan import ScalingPlan
from repro.harness.latency import EpochLatencyRecorder, LatencyTimeline
from repro.harness.openloop import ElasticOpenLoopSource, OpenLoopSource
from repro.harness.workloads import (
    CountWorkload,
    SkewedCountWorkload,
    columnar_count_fold,
    count_fold,
)
from repro.megaphone.api import state_machine
from repro.megaphone.control import BinnedConfiguration
from repro.megaphone.controller import (
    EpochTicker,
    MigrationController,
    MigrationResult,
    ResilientMigrationController,
    RetryPolicy,
)
from repro.megaphone.migration import imbalanced_target, make_plan
from repro.megaphone.snapshot import SnapshotCoordinator
from repro.planner.cost import MigrationCostModel
from repro.planner.policy import ClosedLoopPlanner, PlannerConfig, PlannerReport
from repro.planner.telemetry import LoadTelemetry
from repro.runtime_events.analyze import MigrationTrace
from repro.runtime_events.events import MemorySampled
from repro.sim.cost import CostModel
from repro.sim.engine import Simulator
from repro.sim.memory import MemoryTimeline, MemoryTimelineRecorder
from repro.sim.network import Cluster
from repro.timely.dataflow import Dataflow


@dataclass
class ExperimentConfig:
    """Parameters of one migration experiment."""

    num_workers: int = 8
    workers_per_process: int = 4
    num_bins: int = 64
    domain: int = 1 << 16
    rate: float = 50_000.0
    duration_s: float = 20.0
    granularity_ms: int = 10
    dilation: int = 1  # event-time runs `dilation` times faster than epochs
    # Migration schedule: start times (simulated seconds) paired with the
    # strategy; targets default to imbalance-then-rebalance cycling.
    migrate_at_s: tuple = ()
    strategy: str = "batched"
    batch_size: int = 16
    gap_s: float = 0.0
    pace_s: object = None  # timer pacing for steps (None = await completion)
    variant: str = "key"  # "key" (dense arrays) or "hash" (hash maps)
    bytes_per_key: float = 8.0
    cost: Optional[CostModel] = None
    bandwidth_bytes_per_s: float = 1.25e9
    network_latency_s: float = 40e-6
    sample_memory: bool = False
    memory_sample_s: float = 0.25
    # State backend and codec (see repro.state).  "dict"/"modeled" is the
    # seed-identical default; "tiered" + hot_capacity_bytes spills cold bins
    # to a modeled cold tier (resident/spilled shows up in memory samples).
    state_backend: str = "dict"
    codec: str = "modeled"
    hot_capacity_bytes: Optional[int] = None
    # Durable WAL backend knobs (state_backend="wal").  ``wal_sync_every``
    # is the fsync cadence in application batches: 1 syncs per committed
    # batch, larger values widen the window a crash can lose.
    wal_segment_bytes: int = 1 << 16
    wal_compact_threshold: int = 512
    wal_sync_every: int = 1
    # Base-then-delta migration shipping (requires a delta-capable backend;
    # others fall back to whole-bin silently).
    delta_migration: bool = False
    # Attach a MigrationTrace to the run's bus and expose it on the result
    # (per-bin phase breakdowns).  Observability only: a run is bit-identical
    # with or without it.
    collect_trace: bool = False
    # Observability surface (repro.obsv).  All three are strict observers —
    # bus subscribers that cannot perturb the simulation.  ``export_metrics``
    # streams JSON-line metric snapshots to a path ("-" = stdout);
    # ``metrics_port`` additionally serves Prometheus text on localhost
    # (0 picks an ephemeral port); ``record_log`` writes the versioned
    # event log that `repro.cli replay` re-executes.
    export_metrics: Optional[str] = None
    metrics_port: Optional[int] = None
    metrics_flush_s: float = 0.25
    record_log: Optional[str] = None
    # Count bus events per topic into ``result.topic_counts``.  ``None``
    # disables; ``()`` counts every topic; a non-empty tuple counts only
    # those topics (replay uses this to diff against a recorded log).
    collect_topic_counts: Optional[tuple] = None
    native: bool = False  # run the non-migrateable baseline instead
    # Force the per-record reference routing path in F (disables the
    # steady-state flat-owner fast path).  Simulated results must be
    # identical either way; equivalence tests assert exactly that.
    reference_routing: bool = False
    seed: int = 1
    # Fault injection.  None (the default) leaves every chaos hook unwired —
    # the run is byte-identical to a build without the chaos subsystem.
    chaos: Optional[ChaosConfig] = None
    # Key distribution: "uniform" (the paper's microbenchmark) or "skewed"
    # (Zipf-like heat on hot_keys keys — the regime the planner targets).
    workload: str = "uniform"
    hot_keys: int = 8
    hot_fraction: float = 0.9
    zipf_exponent: float = 1.0
    # Closed-loop planner.  None (the default) leaves telemetry, cost
    # models, and the decision loop unwired — the run is byte-identical to
    # a build without the planner subsystem.
    planner: Optional[PlannerConfig] = None
    # Sharded execution (see repro.parallel).  None runs the legacy serial
    # engine; 0 runs the sharded reference engine in-process; N >= 1 forks
    # N shard processes.  All sharded runs are byte-identical to each other.
    parallel: Optional[int] = None
    # With sharding: wrap each shard process in cProfile (merged by the CLI).
    profile_shards: bool = False
    # Hash every worker's final bin states into the result (sharded runs
    # always do; serial runs opt in — it is how serial-vs-sharded logical
    # equivalence is asserted).
    fingerprint_state: bool = False
    # Elastic membership (repro.elastic).  ``num_workers`` is the
    # *provisioned* slot universe; ``active_workers`` (None = all) is the
    # initially-active prefix.  A scaling plan scripts timed join/leave
    # events; an autoscaler config closes the loop from load telemetry.
    # Any of the three makes the run elastic: the open-loop source feeds a
    # dynamic worker set over a fixed virtual record universe, so final
    # bin state matches a static-membership twin's.
    active_workers: Optional[int] = None
    scaling_plan: Optional[ScalingPlan] = None
    autoscale: Optional[AutoscalerConfig] = None

    def __post_init__(self) -> None:
        # Membership-shape invariants, checked here with a clear error
        # instead of failing deep in ShardPartition arithmetic.  (The
        # partition itself tolerates ragged tails for the sharded engine's
        # internal tests; experiment clusters are always rectangular.)
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be positive, got {self.num_workers}")
        if self.workers_per_process < 1:
            raise ValueError(
                f"workers_per_process must be positive, got {self.workers_per_process}"
            )
        if self.num_workers % self.workers_per_process:
            raise ValueError(
                f"num_workers ({self.num_workers}) must be a multiple of "
                f"workers_per_process ({self.workers_per_process}): the "
                "cluster hosts equal-size process groups, and a ragged "
                "tail would leave a process with missing worker slots"
            )
        if self.active_workers is not None and not (
            1 <= self.active_workers <= self.num_workers
        ):
            raise ValueError(
                f"active_workers must be in 1..{self.num_workers}, "
                f"got {self.active_workers}"
            )
        if self.elastic:
            if self.parallel is not None:
                raise ValueError(
                    "elastic membership is not supported with sharded "
                    "execution (parallel); run the serial engine"
                )
            if self.native:
                raise ValueError(
                    "elastic membership needs the migrateable operator; "
                    "the native baseline cannot scale"
                )
        if self.scaling_plan is not None:
            self.scaling_plan.validate(self.num_workers, self.initial_active)
        if self.autoscale is not None:
            self.autoscale.validate(self.num_workers)

    @property
    def initial_active(self) -> int:
        """How many worker slots start active (a contiguous prefix)."""
        return (
            self.active_workers
            if self.active_workers is not None
            else self.num_workers
        )

    @property
    def elastic(self) -> bool:
        """True when the run's worker set can change (or starts partial)."""
        return (
            self.scaling_plan is not None
            or self.autoscale is not None
            or self.initial_active != self.num_workers
        )

    def make_workload(self):
        """The configured workload object (uniform or skewed)."""
        if self.workload == "uniform":
            return CountWorkload(domain=self.domain, seed=self.seed)
        if self.workload == "skewed":
            return SkewedCountWorkload(
                domain=self.domain,
                seed=self.seed,
                hot_keys=self.hot_keys,
                hot_fraction=self.hot_fraction,
                zipf_exponent=self.zipf_exponent,
            )
        raise ValueError(
            f"unknown workload {self.workload!r}; pick 'uniform' or 'skewed'"
        )

    def backend_options(self) -> dict:
        """Backend-specific constructor options (None values are dropped
        by the registry, so flat backends see an empty dict).

        For the ``wal`` backend this mints a fresh :class:`WalRegistry` —
        the run's modeled disk.  It is owned by the returned dict (which
        ``MegaphoneConfig`` holds for the run's lifetime), so the logs
        survive process restarts inside one run but two runs of the same
        config never share storage.  Call once per run.
        """
        options: dict = {"hot_capacity_bytes": self.hot_capacity_bytes}
        if self.state_backend == "wal":
            from repro.state.wal import WalRegistry

            options.update(
                wal_registry=WalRegistry(self.wal_segment_bytes),
                segment_bytes=self.wal_segment_bytes,
                compact_threshold=self.wal_compact_threshold,
                sync_every=self.wal_sync_every,
            )
        return options

    def resolved_cost(self) -> CostModel:
        """The cost model, with the variant's per-record cost applied."""
        cost = self.cost if self.cost is not None else CostModel()
        cost = cost.with_overrides(state_bytes_per_key=self.bytes_per_key)
        if self.variant == "hash":
            # Hash-map bins pay hashing and probing on every update.
            cost = cost.with_overrides(record_cost=cost.record_cost * 2.5)
        return cost


@dataclass
class ExperimentResult:
    """Everything a benchmark reports from one run."""

    config: ExperimentConfig
    timeline: LatencyTimeline
    migrations: list[MigrationResult] = field(default_factory=list)
    memory: list[MemoryTimeline] = field(default_factory=list)
    records_injected: int = 0
    sim_events: int = 0
    wall_seconds: float = 0.0
    # Present when the config asked for trace collection.
    migration_trace: Optional[MigrationTrace] = None
    # Chaos outcome (None unless the config carried a ChaosConfig):
    # verdict is the watchdog's "completed" / "recovered" / "stalled".
    chaos_verdict: Optional[str] = None
    chaos_recoveries: int = 0
    chaos_diagnoses: list = field(default_factory=list)
    abandoned_steps: int = 0
    fault_log: Optional[FaultLog] = None
    # Durable recovery outcome (wal backend under chaos): per-worker state
    # fingerprints taken right after log replay, and the structured damage
    # reports the replay surfaced.
    recovered_fingerprints: dict = field(default_factory=dict)
    storage_faults: list = field(default_factory=list)
    # Planner outcome (None unless the config carried a PlannerConfig):
    # the decision log plus the end-of-run max/mean worker-load ratio.
    planner: Optional[PlannerReport] = None
    final_imbalance: float = 0.0
    # The calibrated cost model (post-run), for prediction-vs-observed checks.
    cost_model: Optional[MigrationCostModel] = None
    # Sharded-run report (None for serial runs): mode, children, rounds,
    # lookahead, per-domain event counts, per-worker state fingerprints.
    parallel: Optional[dict] = None
    # Per-topic bus event counts (when the config asked for them) and the
    # bound Prometheus port (when the config served metrics).
    topic_counts: dict = field(default_factory=dict)
    metrics_port: Optional[int] = None
    # Per-worker final state fingerprints (sharded always; serial when the
    # config sets ``fingerprint_state``).
    state_fingerprints: dict = field(default_factory=dict)
    # Elastic membership outcome (None unless the run was elastic): the
    # directory's transition history, the coordinator's per-operation
    # report, the autoscaler's decision log, and an owner-independent
    # digest of all bin state (the pin against a static-membership twin).
    membership: list = field(default_factory=list)
    scaling: Optional[ScalingReport] = None
    autoscale_decisions: list = field(default_factory=list)
    cluster_fingerprint: Optional[str] = None

    def migration_window(self, index: int) -> tuple[float, float]:
        """(start, end) of migration ``index``, padded by one window."""
        migration = self.migrations[index]
        start = migration.started_at or 0.0
        end = migration.completed_at or start
        return (start - 0.25, end + self.timeline.window_s + 0.25)

    def migration_max_latency(self, index: int) -> float:
        """Largest latency observed during migration ``index``."""
        start, end = self.migration_window(index)
        return self.timeline.max_between(start, end)

    def migration_duration(self, index: int) -> float:
        """Duration of migration ``index`` (first issue to last completion)."""
        return self.migrations[index].duration or 0.0

    def steady_max_latency(self, warmup_s: float = 1.0) -> float:
        """Largest latency outside every migration window (after warmup)."""
        best = 0.0
        for stats in self.timeline.series():
            if stats.start_s < warmup_s:
                continue
            inside = any(
                self.migration_window(i)[0] <= stats.start_s < self.migration_window(i)[1]
                for i in range(len(self.migrations))
            )
            if not inside:
                best = max(best, stats.max_s)
        return best

    def overall_max_latency(self, warmup_s: float = 1.0) -> float:
        """Largest latency after warmup, migrations included."""
        best = 0.0
        for stats in self.timeline.series():
            if stats.start_s >= warmup_s:
                best = max(best, stats.max_s)
        return best


class MigrationExperiment:
    """Drives a dataflow with open-loop input and scheduled migrations.

    The builder callback receives ``(dataflow, control_stream, data_stream,
    config)`` and returns ``(probe_stream, migrateable_op_or_None,
    state_bytes_fn_or_None)``; everything else — ticking, load, migration
    control, sampling, shutdown — is shared orchestration.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        build: Callable,
        generator: Callable[[int, int, int], list],
        record_extra: Optional[dict] = None,
    ) -> None:
        self.config = config
        self._build = build
        self._generator = generator
        # Event-log header extras (the nexmark harness records its query
        # number here so replay can dispatch the right runner).
        self._record_extra = record_extra

    def run(self) -> ExperimentResult:
        cfg = self.config
        started = wallclock.perf_counter()
        sim = Simulator()
        cluster = Cluster(
            sim,
            num_workers=cfg.num_workers,
            workers_per_process=cfg.workers_per_process,
            bandwidth_bytes_per_s=cfg.bandwidth_bytes_per_s,
            network_latency_s=cfg.network_latency_s,
            cost=cfg.resolved_cost(),
        )
        df = Dataflow(cluster)
        control, control_group = df.new_input("control")
        data, data_group = df.new_input("data")
        probe_stream, op, state_bytes_fn = self._build(df, control, data, cfg)
        probe = df.probe(probe_stream)
        runtime = df.build()

        migration_trace = MigrationTrace(sim.trace) if cfg.collect_trace else None

        # -- observability (repro.obsv): exporter, recorder, topic counts ----
        # All of these are bus subscribers; the simulation is byte-identical
        # with or without them.  Imported lazily so the harness stays cheap
        # for the overwhelmingly common unobserved run.
        exporter = None
        if cfg.export_metrics or cfg.metrics_port is not None:
            from repro.obsv.exporter import MetricsExporter

            exporter = MetricsExporter(
                sim.trace,
                jsonl=cfg.export_metrics,
                flush_every_s=cfg.metrics_flush_s,
            )
            if cfg.metrics_port is not None:
                exporter.serve(cfg.metrics_port)
        event_log = None
        if cfg.record_log:
            from repro.obsv.eventlog import EventLogRecorder

            event_log = EventLogRecorder(
                cfg, sim.trace, cfg.record_log, extra=self._record_extra
            )
        topic_counts: dict = {}
        if cfg.collect_topic_counts is not None:

            def _count_topic(event, _counts=topic_counts) -> None:
                _counts[event.topic] = _counts.get(event.topic, 0) + 1

            sim.trace.subscribe(
                _count_topic, topics=cfg.collect_topic_counts or None
            )

        timeline = LatencyTimeline()
        recorder = EpochLatencyRecorder(
            runtime, probe, cfg.granularity_ms, timeline, dilation=cfg.dilation
        )
        source_kwargs = dict(
            rate=cfg.rate,
            duration_s=cfg.duration_s,
            granularity_ms=cfg.granularity_ms,
            recorder=recorder,
            dilation=cfg.dilation,
        )
        if cfg.elastic:
            # Dynamic feed set over a fixed virtual record universe: final
            # bin state is pinned to a static-membership twin's.
            source = ElasticOpenLoopSource(
                runtime,
                data_group,
                self._generator,
                active=list(range(cfg.initial_active)),
                **source_kwargs,
            )
        else:
            source = OpenLoopSource(
                runtime, data_group, self._generator, **source_kwargs
            )
        ticker = EpochTicker(
            runtime,
            control_group,
            granularity_ms=cfg.granularity_ms,
            dilation=cfg.dilation,
        )

        # -- fault injection (inert unless the config carries a ChaosConfig) --
        chaos = cfg.chaos
        injector = None
        watchdog = None
        ledger = None
        coordinator = None
        fault_log = None
        snapshot_box: dict = {}
        controllers: list[MigrationController] = []
        if chaos is not None:
            fault_log = FaultLog(sim.trace)
            injector = ChaosInjector(runtime, chaos.plan)
            injector.install()
            if op is not None:
                op.config.recovery_mode = True
                ledger = ConfigurationLedger(op.config.initial)
                # Durable storage: crashes damage the worker logs (per the
                # plan's storage-fault knobs), and restarts recover from
                # those logs instead of in-memory snapshots.
                wal_registry = op.config.backend_options.get("wal_registry")
                if wal_registry is not None:
                    plan_seed = chaos.plan.seed

                    def _crash_storage(crash, workers, _reg=wal_registry):
                        _reg.apply_crash_faults(
                            workers,
                            lose_unsynced_tail=crash.lose_unsynced_tail,
                            torn_write=crash.torn_write,
                            bit_flips=crash.bit_flips,
                            seed=plan_seed,
                        )

                    injector.on_crash_storage(_crash_storage)
                coordinator = RecoveryCoordinator(
                    runtime,
                    op,
                    ledger,
                    injector=injector,
                    snapshot_provider=lambda: snapshot_box.get("snapshot"),
                    durable=wal_registry is not None,
                )
                if chaos.snapshot_at_s is not None:
                    # Capture a consistent cut at the epoch corresponding to
                    # the requested simulated time (EpochTicker's mapping).
                    snap_epoch = (
                        int(round(chaos.snapshot_at_s * 1000 / cfg.granularity_ms))
                        * cfg.granularity_ms
                        * cfg.dilation
                    )
                    SnapshotCoordinator(
                        runtime,
                        op,
                        probe,
                        snap_epoch,
                        on_complete=lambda s: snapshot_box.update(snapshot=s),
                    )
            watchdog = LivenessWatchdog(
                runtime,
                probe,
                config=chaos.watchdog
                if chaos.watchdog is not None
                else WatchdogConfig(),
                injector=injector,
                on_stall=lambda _diag: [c.nudge() for c in resilient],
            )
            watchdog.start()

        # -- closed-loop planner (inert unless the config carries one) --------
        planner = None
        telemetry = None
        cost_model = None
        if cfg.planner is not None and op is not None:
            telemetry = LoadTelemetry(
                runtime, op, cfg.planner.telemetry, num_workers=cfg.num_workers
            )
            cost_model = MigrationCostModel(
                sim.trace,
                prior=cfg.resolved_cost(),
                bandwidth_bytes_per_s=cfg.bandwidth_bytes_per_s,
                network_latency_s=cfg.network_latency_s,
            )
            if cfg.planner.stop_s is None:
                cfg.planner.stop_s = cfg.duration_s

        resilient: list[ResilientMigrationController] = []

        def _membership_placeable(worker: int) -> bool:
            # Crash retargeting must respect membership in elastic runs:
            # orphaned bins may only land on active or joining workers,
            # never on a draining evacuee or an idle standby slot.  The
            # directory is created further down (elastic block) and read
            # late-bound; non-elastic runs see no directory and keep the
            # original any-live-worker behavior.
            if directory is None:
                return True
            return directory.state_of(worker) in ("joining", "active")

        if op is not None and cfg.migrate_at_s:
            initial = op.config.initial
            current = initial
            for i, at_s in enumerate(cfg.migrate_at_s):
                target = imbalanced_target(initial) if i % 2 == 0 else initial
                plan = make_plan(cfg.strategy, current, target, cfg.batch_size)
                if chaos is not None:
                    controller = ResilientMigrationController(
                        runtime, control_group, ticker, probe, plan,
                        retry=chaos.retry
                        if chaos.retry is not None
                        else RetryPolicy(),
                        injector=injector,
                        ledger=ledger,
                        on_recovery_step=coordinator.on_recovery_step
                        if coordinator is not None
                        else None,
                        reconcile=(i == 0),
                        placeable=_membership_placeable,
                        gap_s=cfg.gap_s, pace_s=cfg.pace_s,
                    )
                    resilient.append(controller)
                else:
                    controller = MigrationController(
                        runtime, control_group, ticker, probe, plan,
                        gap_s=cfg.gap_s, pace_s=cfg.pace_s,
                    )
                controller.start_at(at_s)
                controllers.append(controller)
                current = target

        planner_box: dict = {}
        if telemetry is not None:

            def _planner_controller(plan):
                if chaos is not None:
                    controller = ResilientMigrationController(
                        runtime, control_group, ticker, probe, plan,
                        retry=chaos.retry
                        if chaos.retry is not None
                        else RetryPolicy(),
                        injector=injector,
                        ledger=ledger,
                        on_recovery_step=coordinator.on_recovery_step
                        if coordinator is not None
                        else None,
                        # Scheduled migrations (if any) already reconcile
                        # crashes; planner-spawned controllers never do.
                        reconcile=False,
                        placeable=_membership_placeable,
                        gap_s=cfg.planner.gap_s,
                    )
                    resilient.append(controller)
                    return controller
                return MigrationController(
                    runtime, control_group, ticker, probe, plan,
                    gap_s=cfg.planner.gap_s,
                )

            planner = ClosedLoopPlanner(
                runtime,
                op,
                control_group,
                ticker,
                probe,
                telemetry,
                cost_model,
                cfg.planner,
                controller_factory=_planner_controller,
            )
            telemetry.start(0.0)
            planner.start()
            # The reported imbalance is the ratio while load still flows;
            # sampling after the source stops would read an empty window.
            sim.schedule_at(
                cfg.duration_s,
                lambda: planner_box.update(imbalance=telemetry.imbalance()),
            )

        # -- elastic membership (inert unless the config is elastic) ----------
        directory = None
        scaling = None
        autoscaler = None
        if cfg.elastic and op is not None:
            directory = MembershipDirectory(
                cfg.num_workers, cfg.initial_active, sim=sim
            )
            if cfg.autoscale is not None and telemetry is None:
                # The autoscaler needs load telemetry even without a
                # planner; default sampling knobs match the planner's.
                telemetry = LoadTelemetry(
                    runtime, op, num_workers=cfg.num_workers
                )
                telemetry.start(0.0)

            def _scaling_controller(plan, on_done):
                if chaos is not None:
                    controller = ResilientMigrationController(
                        runtime, control_group, ticker, probe, plan,
                        retry=chaos.retry
                        if chaos.retry is not None
                        else RetryPolicy(),
                        injector=injector,
                        ledger=ledger,
                        on_recovery_step=coordinator.on_recovery_step
                        if coordinator is not None
                        else None,
                        # Crash reconciliation stays with the scheduled
                        # migrations (or the injector's own hooks).
                        reconcile=False,
                        placeable=_membership_placeable,
                        gap_s=cfg.gap_s, pace_s=cfg.pace_s, on_done=on_done,
                    )
                    resilient.append(controller)
                    return controller
                return MigrationController(
                    runtime, control_group, ticker, probe, plan,
                    gap_s=cfg.gap_s, pace_s=cfg.pace_s, on_done=on_done,
                )

            scaling = ScalingCoordinator(
                runtime,
                op,
                directory,
                source,
                controller_factory=_scaling_controller,
                strategy=cfg.strategy,
                batch_size=cfg.batch_size,
                telemetry=telemetry,
                ledger=ledger,
            )
            if cfg.scaling_plan is not None:
                for event in cfg.scaling_plan.events:
                    request = (
                        scaling.request_join
                        if event.action == "join"
                        else scaling.request_leave
                    )
                    sim.schedule_at(
                        event.at_s,
                        lambda req=request, ws=event.workers: req(ws),
                    )
            if cfg.autoscale is not None:
                if cfg.autoscale.stop_s is None:
                    cfg.autoscale.stop_s = cfg.duration_s
                autoscaler = Autoscaler(
                    runtime, telemetry, directory, scaling, cfg.autoscale
                )
                autoscaler.start()

        if cfg.sample_memory:
            memory_recorder = MemoryTimelineRecorder(
                sim.trace, len(cluster.processes)
            )
            memory_timelines = memory_recorder.timelines
            self._schedule_memory_sampler(
                runtime, cluster, state_bytes_fn, injector
            )
        else:
            memory_timelines = [
                MemoryTimeline(process=p.index) for p in cluster.processes
            ]

        ticker.start()
        source.start()

        runtime.run(until=cfg.duration_s + 1.0)
        if planner is not None:
            planner.stop()
        if autoscaler is not None:
            autoscaler.stop()

        def _pending() -> bool:
            if any(not c.done for c in controllers):
                return True
            if scaling is not None and (
                scaling.busy or any(not c.done for c in scaling.controllers)
            ):
                return True
            return planner is not None and (
                not planner.done
                or any(not c.done for c in planner.controllers)
            )

        guard = 0
        while _pending():
            if watchdog is not None and watchdog.failed:
                # The watchdog gave up: stop driving and report the stall
                # (verdict + diagnosis) instead of spinning.
                break
            runtime.sim.run(max_events=100_000)
            guard += 1
            if guard > 10_000:
                if chaos is not None:
                    break
                raise RuntimeError("migration did not complete; dataflow stalled")
        if telemetry is not None:
            telemetry.stop()
        ticker.stop()
        runtime.run_to_quiescence()

        if fault_log is not None:
            fault_log.close()
        all_controllers = list(controllers)
        if planner is not None:
            all_controllers.extend(planner.controllers)
        if scaling is not None:
            all_controllers.extend(scaling.controllers)
        result = ExperimentResult(
            config=cfg,
            timeline=timeline,
            migrations=[c.result for c in all_controllers],
            memory=memory_timelines,
            records_injected=source.records_injected,
            sim_events=sim.events_processed,
            wall_seconds=wallclock.perf_counter() - started,
            migration_trace=migration_trace,
        )
        if watchdog is not None:
            result.chaos_verdict = watchdog.verdict
            result.chaos_recoveries = watchdog.recoveries
            result.chaos_diagnoses = list(watchdog.diagnoses)
        if chaos is not None:
            result.abandoned_steps = sum(len(c.abandoned) for c in resilient)
            result.fault_log = fault_log
            if coordinator is not None:
                result.recovered_fingerprints = dict(
                    coordinator.recovered_fingerprints
                )
                result.storage_faults = list(coordinator.storage_faults)
        if planner is not None:
            result.planner = planner.report
            result.final_imbalance = planner_box.get(
                "imbalance", telemetry.imbalance()
            )
            cost_model.close()
            result.cost_model = cost_model
        if directory is not None:
            result.membership = list(directory.history)
            result.scaling = scaling.report
            if autoscaler is not None:
                result.autoscale_decisions = list(autoscaler.decisions)
        # Recording forces state fingerprints: the log's footer fingerprint
        # must cover final state, or replay would verify a weaker pin.
        if (cfg.fingerprint_state or event_log is not None) and op is not None:
            from repro.chaos.recovery import cluster_fingerprint, store_fingerprint

            result.state_fingerprints = {
                w: store_fingerprint(store) for w, store in op.stores(runtime)
            }
            result.cluster_fingerprint = cluster_fingerprint(
                store for _w, store in op.stores(runtime)
            )
        result.topic_counts = topic_counts
        if exporter is not None:
            result.metrics_port = exporter.port
            exporter.close()
        if event_log is not None:
            event_log.finalize(result)
        return result

    def _schedule_memory_sampler(
        self, runtime, cluster, state_bytes_fn, injector=None
    ) -> None:
        """Publish a ``MemorySampled`` event per process every sampling tick.

        The sampler is part of the simulation (it refreshes modeled state
        bytes and runs whether or not anyone subscribed), so attaching or
        detaching memory consumers cannot perturb determinism.
        """
        cfg = self.config
        sim = runtime.sim
        trace = sim.trace

        def sample() -> None:
            for process in cluster.processes:
                dead = injector is not None and injector.is_dead(
                    process.worker_ids[0]
                )
                if state_bytes_fn is not None and not dead:
                    resident = 0
                    spilled = 0
                    for w in process.worker_ids:
                        measured = state_bytes_fn(w)
                        # Backend-aware builders report (resident, spilled);
                        # scalar returns mean everything is resident.
                        if isinstance(measured, tuple):
                            resident += measured[0]
                            spilled += measured[1]
                        else:
                            resident += measured
                    process.memory.set_state(resident, spilled)
                trace.publish(
                    MemorySampled(
                        process=process.index,
                        rss_bytes=process.memory.rss_bytes,
                        at=sim.now,
                        spilled_bytes=process.memory.spilled_state_bytes,
                    )
                )
            if sim.now < cfg.duration_s + 1.0:
                sim.schedule(cfg.memory_sample_s, sample)

        sim.schedule_at(0.0, sample)


# -- the counting microbenchmark ------------------------------------------------


def _build_megaphone_count(df, control, data, cfg: ExperimentConfig):
    workload = cfg.make_workload()
    # Bins start on the initially-active prefix only; standby slots own
    # nothing until a scale-out seeds them.
    initial = BinnedConfiguration.round_robin(cfg.num_bins, cfg.initial_active)
    op = state_machine(
        control,
        data,
        exchange=lambda key: key,
        fold=count_fold,
        num_bins=cfg.num_bins,
        initial=initial,
        name="count",
        state_factory=workload.state_factory_for(cfg.num_bins),
        state_size_fn=lambda state: len(state) * cfg.bytes_per_key,
        reference_routing=cfg.reference_routing,
        state_backend=cfg.state_backend,
        codec=cfg.codec,
        backend_options=cfg.backend_options(),
        columnar_applier=columnar_count_fold,
        delta_migration=cfg.delta_migration,
    )

    def state_bytes_fn(worker: int) -> tuple:
        runtime = df._runtime
        shared = runtime.workers[worker].shared
        store = shared.get("megaphone:count")
        if store is None:
            return (0, 0)
        return (store.resident_state_size(), store.spilled_state_size())

    return op.output, op, state_bytes_fn


class _NativeCountLogic:
    """Hand-tuned non-migrateable count operator (the paper's 'Native')."""

    def __init__(self, cfg: ExperimentConfig, worker_id: int) -> None:
        from repro.harness.workloads import ModeledCountState

        self._state = ModeledCountState(
            expected_keys=cfg.domain / cfg.num_workers
        )
        self._pending: dict[int, int] = {}

    def on_input(self, ctx, port, time, records):
        if time not in self._pending:
            self._pending[time] = 0
            ctx.notify_at(time)
        self._pending[time] += len(records)
        state = self._state
        for key, diff in records:
            state.add(key, diff)

    def on_notify(self, ctx, time):
        # Emission point: counts for `time` are final.
        self._pending.pop(time, None)


def _build_native_count(df, control, data, cfg: ExperimentConfig):
    from repro.timely.graph import Exchange

    out = data.unary(
        "native_count",
        lambda worker_id: _NativeCountLogic(cfg, worker_id),
        pact=Exchange(lambda record: record[0]),
    )
    # The control stream still needs a consumer so its frontier drains.
    control.sink(name="control_sink")

    def state_bytes_fn(worker: int) -> float:
        return (cfg.domain / cfg.num_workers) * cfg.bytes_per_key

    return out, None, state_bytes_fn


def run_count_experiment(cfg: ExperimentConfig) -> ExperimentResult:
    """Run the counting microbenchmark under ``cfg``."""
    if cfg.parallel is not None:
        from repro.parallel.runner import run_parallel_count_experiment

        return run_parallel_count_experiment(cfg)
    workload = cfg.make_workload()
    build = _build_native_count if cfg.native else _build_megaphone_count
    experiment = MigrationExperiment(cfg, build, workload.make_generator())
    return experiment.run()
