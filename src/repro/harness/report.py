"""Plain-text reporting used by every benchmark.

Benchmarks regenerate the paper's tables and figures as text: tables print
as aligned columns, figures print as the series a plotting tool would
consume (one row per point), so the shapes are inspectable in CI logs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def format_latency(seconds: Optional[float]) -> str:
    """Human-friendly latency (ms with sensible precision)."""
    if seconds is None:
        return "-"
    ms = seconds * 1000.0
    if ms >= 100:
        return f"{ms:.0f} ms"
    if ms >= 1:
        return f"{ms:.2f} ms"
    return f"{ms:.3f} ms"


def format_bytes(num_bytes: float) -> str:
    """Human-friendly byte count."""
    units = ["B", "KiB", "MiB", "GiB", "TiB"]
    value = float(num_bytes)
    for unit in units:
        if abs(value) < 1024 or unit == units[-1]:
            return f"{value:.1f} {unit}"
        value /= 1024
    return f"{value:.1f} TiB"


def format_duration(seconds: Optional[float]) -> str:
    """Human-friendly duration."""
    if seconds is None:
        return "-"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    return f"{seconds * 1000:.1f} ms"


def format_count(value: float) -> str:
    """Human-friendly large count (uses the paper's powers-of-ten style)."""
    if value >= 1e9:
        return f"{value / 1e9:g}G"
    if value >= 1e6:
        return f"{value / 1e6:g}M"
    if value >= 1e3:
        return f"{value / 1e3:g}k"
    return f"{value:g}"


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    out=print,
) -> None:
    """Print an aligned text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out(f"\n== {title} ==")
    out("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    out("  ".join("-" * w for w in widths))
    for row in str_rows:
        out("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def print_timeline(title: str, series, out=print, every: int = 1) -> None:
    """Print a latency timeline (Figures 1, 5-12 style)."""
    rows = [
        (
            f"{s.start_s:.2f}",
            format_latency(s.max_s),
            format_latency(s.p99_s),
            format_latency(s.p50_s),
            format_latency(s.p25_s),
        )
        for i, s in enumerate(series)
        if i % every == 0
    ]
    print_table(title, ["time [s]", "max", "p99", "p50", "p25"], rows, out=out)


def print_ccdf(title: str, points, out=print, max_points: int = 40) -> None:
    """Print a CCDF (Figures 13-15 style)."""
    step = max(1, len(points) // max_points)
    rows = [
        (format_latency(latency), f"{fraction:.2e}")
        for latency, fraction in points[::step]
    ]
    print_table(title, ["latency", "CCDF"], rows, out=out)


def print_phase_breakdown(
    title: str,
    breakdown,
    out=print,
    max_rows: int = 16,
) -> None:
    """Print a per-bin migration phase breakdown (``runtime_events.analyze``).

    One row per migrated bin: drain wait → extract → ship → install →
    catch-up, which partition the bin's step duration exactly.  Large
    migrations are truncated to ``max_rows`` bins; the step totals and the
    per-phase sums below always cover every bin.
    """
    rows = []
    for phases in breakdown.rows[:max_rows]:
        rows.append(
            (
                phases.bin,
                f"{phases.src}->{phases.dst}",
                format_bytes(phases.size_bytes),
                format_duration(phases.drain_s),
                format_duration(phases.extract_s),
                format_duration(phases.ship_s),
                format_duration(phases.install_s),
                format_duration(phases.catchup_s),
                format_duration(phases.total_s),
            )
        )
    print_table(
        title,
        ["bin", "move", "size", "drain", "extract", "ship", "install",
         "catch-up", "total"],
        rows,
        out=out,
    )
    hidden = len(breakdown.rows) - max_rows
    if hidden > 0:
        out(f"... ({hidden} more bins)")
    if breakdown.incomplete:
        out(f"({breakdown.incomplete} bins with incomplete lifecycles omitted)")
    step_totals = breakdown.step_totals()
    if step_totals:
        out(
            f"steps: {len(step_totals)}; bins: {len(breakdown.rows)}; "
            f"summed step durations: "
            f"{format_duration(breakdown.total_duration())}"
        )
    sums = breakdown.phase_sums()
    grand = sum(sums.values())
    if grand > 0:
        parts = ", ".join(
            f"{phase} {format_duration(value)} ({value / grand:.0%})"
            for phase, value in sums.items()
        )
        out(f"phase totals across bins: {parts}")


def log_range(start: float, stop: float, factor: float) -> list[float]:
    """Geometric sweep values, inclusive of both endpoints (approximately)."""
    out = []
    value = start
    while value <= stop * (1 + 1e-9):
        out.append(value)
        value *= factor
    return out
