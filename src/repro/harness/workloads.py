"""The counting microbenchmark workloads (paper §5.2-5.3).

The workload draws 64-bit keys uniformly from a configurable domain and
maintains a per-key cumulative count.  The paper runs two variants:
"hash count" (hash-map bins) and "key count" (dense-array bins, cheaper per
record).  Both are reproduced; the per-record CPU difference is expressed
through the cost model.

Domains in the paper reach 32x10^9 keys — far beyond what Python can hold.
``ModeledCountState`` therefore *models* the per-bin key population: after
the paper's pre-loading step every key of the bin's share of the domain
exists, so the bin's state size is ``domain/num_bins`` keys regardless of
which counts are incremented later.  The counts themselves are folded into
a single tally, which keeps the per-record work O(1) and the migration
payload faithful to ``keys x bytes-per-key``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.openloop import Lcg
from repro.runtime_events import columns
from repro.runtime_events.columns import ColumnBatch, ColumnGroup, VectorLcg


class ModeledCountState:
    """Per-bin count state with a modeled key population.

    ``expected_keys`` is the bin's share of the (pre-loaded) key domain;
    ``len`` reports it so the migration machinery sees the right state
    size.  ``add`` folds one update in and returns the modeled count.
    """

    __slots__ = ("expected_keys", "records")

    def __init__(self, expected_keys: float = 0.0) -> None:
        self.expected_keys = expected_keys
        self.records = 0

    def add(self, key: int, diff: int = 1) -> int:
        """Fold one update in; returns the key's modeled cumulative count."""
        self.records += 1
        # Modeled cumulative count for the key: uniform draws mean each key
        # has seen ~records/expected_keys updates plus the pre-loaded one.
        if self.expected_keys > 0:
            return 1 + int(self.records / self.expected_keys)
        return self.records

    def __len__(self) -> int:
        return int(self.expected_keys)


@dataclass
class CountWorkload:
    """Uniform-key counting workload over a fixed domain."""

    domain: int
    seed: int = 1

    def make_generator(self):
        """A per-worker deterministic generator of ``(key, 1)`` records.

        Emits :class:`ColumnBatch` columns: the keys are the same draws the
        per-record ``Lcg`` loop would produce (``VectorLcg`` is a
        bit-identical batched jump of the same generator), the values are a
        ones column.  Consumers that want tuples iterate the batch.
        """
        lcgs: dict[int, VectorLcg] = {}
        domain = self.domain
        seed = self.seed

        def generate(worker: int, epoch_ms: int, count: int) -> ColumnBatch:
            lcg = lcgs.get(worker)
            if lcg is None:
                lcg = lcgs[worker] = VectorLcg(seed * 1000003 + worker)
            keys = columns.mod_column(lcg.next_batch(count), domain)
            return ColumnBatch(keys, columns.ones_column(count))

        return generate

    def expected_keys_per_bin(self, num_bins: int) -> float:
        """The pre-loaded key population of one bin."""
        return self.domain / num_bins

    def state_factory_for(self, num_bins: int):
        """Factory producing pre-loaded modeled bin states."""
        expected = self.expected_keys_per_bin(num_bins)

        def factory() -> ModeledCountState:
            return ModeledCountState(expected_keys=expected)

        return factory


def count_fold(key: int, diff: int, state: ModeledCountState) -> list:
    """The counting fold: accumulate and report the key's count."""
    return [(key, state.add(key, diff))]


def columnar_count_fold(group: ColumnGroup):
    """Whole-group counting fold — the vectorized twin of ``count_fold``.

    Must produce, per record, the exact count the per-record path computes:
    for the ``j``-th record (1-based, arrival order) of a bin whose state
    held ``records`` before the group, the modeled count is
    ``1 + int((records + j) / expected_keys)``.  Float64 division plus
    truncation is bit-identical to Python's ``int(a / b)`` here (all the
    quantities are positive and far below 2**53).
    """
    starts = group.starts
    states = group.states
    np = columns._np
    if np is not None and isinstance(group.keys, np.ndarray):
        starts_arr = np.asarray(starts, dtype=np.int64)
        sizes = np.diff(starts_arr)
        before = np.asarray([s.records for s in states], dtype=np.int64)
        expected = np.asarray([s.expected_keys for s in states], dtype=np.float64)
        if (expected > 0).all():
            total = len(group)
            # Record ``i`` (global, 0-based) in bin ``j`` folds to
            # ``before_j + (i + 1 - starts_j)``; hoisting the per-bin part
            # into one base vector leaves a single repeat per column.
            folded = np.arange(1, total + 1, dtype=np.int64) + np.repeat(
                before - starts_arr[:-1], sizes
            )
            counts = 1 + (folded / np.repeat(expected, sizes)).astype(np.int64)
            for j, state in enumerate(states):
                state.records += int(sizes[j])
            return ColumnBatch(group.keys, counts)
    # Pure-array fallback (and the expected_keys <= 0 corner): the scalar
    # fold per record, gathered into one output column.
    from array import array

    counts_col = array("q")
    append = counts_col.append
    for j, state in enumerate(states):
        for _ in range(starts[j + 1] - starts[j]):
            state.records += 1
            if state.expected_keys > 0:
                append(1 + int(state.records / state.expected_keys))
            else:
                append(state.records)
    if np is not None and isinstance(group.keys, np.ndarray):
        return ColumnBatch(group.keys, np.asarray(counts_col, dtype=np.int64))
    return ColumnBatch(group.keys, counts_col)


@dataclass
class SkewedCountWorkload:
    """Counting workload with Zipf-like heat concentrated on a few keys.

    A ``hot_fraction`` share of the traffic goes to ``hot_keys`` keys whose
    popularity decays as ``rank^-zipf_exponent``; the rest draws uniformly
    from the domain.  Because bins hash keys (splitmix64 top bits), the hot
    keys land in a handful of bins — exactly the per-bin load imbalance the
    migration planner's telemetry is built to detect.  The interface
    mirrors :class:`CountWorkload` so every harness path accepts either.
    """

    domain: int
    seed: int = 1
    hot_keys: int = 8
    hot_fraction: float = 0.9
    zipf_exponent: float = 1.0

    def hot_key_set(self) -> list[int]:
        """The hot keys, most popular first (deterministic in the seed)."""
        lcg = Lcg(self.seed * 7777771 + 13)
        seen: set[int] = set()
        keys: list[int] = []
        while len(keys) < self.hot_keys:
            key = lcg.next() % self.domain
            if key not in seen:
                seen.add(key)
                keys.append(key)
        return keys

    def hot_bin_ids(self, num_bins: int) -> set[int]:
        """The bins the hot keys hash into under ``num_bins`` bins."""
        from repro.megaphone.control import bin_of

        return {bin_of(key, num_bins) for key in self.hot_key_set()}

    def _rank_table(self, slots: int = 1024) -> list[int]:
        """Quantized Zipf CDF: a uniform draw over slots picks a hot-key
        rank with probability proportional to ``rank^-zipf_exponent``."""
        weights = [
            1.0 / (rank + 1) ** self.zipf_exponent
            for rank in range(self.hot_keys)
        ]
        total = sum(weights)
        table: list[int] = []
        cumulative = 0.0
        for rank, weight in enumerate(weights):
            cumulative += weight
            fill = int(round(slots * cumulative / total))
            while len(table) < fill:
                table.append(rank)
        while len(table) < slots:
            table.append(self.hot_keys - 1)
        return table

    def make_generator(self):
        """A per-worker deterministic generator of ``(key, 1)`` records."""
        lcgs: dict[int, Lcg] = {}
        domain = self.domain
        seed = self.seed
        hot = self.hot_key_set()
        table = self._rank_table()
        slots = len(table)
        threshold = int(self.hot_fraction * 1_000_000)

        def generate(worker: int, epoch_ms: int, count: int) -> list:
            lcg = lcgs.get(worker)
            if lcg is None:
                lcg = lcgs[worker] = Lcg(seed * 1000003 + worker)
            nxt = lcg.next
            out = []
            for _ in range(count):
                if nxt() % 1_000_000 < threshold:
                    out.append((hot[table[nxt() % slots]], 1))
                else:
                    out.append((nxt() % domain, 1))
            return out

        return generate

    def expected_keys_per_bin(self, num_bins: int) -> float:
        """The pre-loaded key population of one bin."""
        return self.domain / num_bins

    def state_factory_for(self, num_bins: int):
        """Factory producing pre-loaded modeled bin states."""
        expected = self.expected_keys_per_bin(num_bins)

        def factory() -> ModeledCountState:
            return ModeledCountState(expected_keys=expected)

        return factory
