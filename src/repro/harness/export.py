"""Export measured series as gnuplot-ready data files.

The paper's figures are gnuplot plots; this module writes the measured
series in the same shape — one whitespace-separated ``.dat`` block per
series with a commented header — plus a minimal ``.gp`` script, so anyone
can regenerate publication-style plots from a benchmark's results.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional

from repro.harness.latency import LatencyTimeline, LogHistogram


def timeline_dat(timeline: LatencyTimeline, title: str = "latency") -> str:
    """Figure 1/5-12 style: time vs max/p99/p50/p25 (milliseconds)."""
    lines = [f"# {title}", "# time_s max_ms p99_ms p50_ms p25_ms"]
    for stats in timeline.series():
        lines.append(
            f"{stats.start_s:.3f} {stats.max_s * 1000:.4f} "
            f"{stats.p99_s * 1000:.4f} {stats.p50_s * 1000:.4f} "
            f"{stats.p25_s * 1000:.4f}"
        )
    return "\n".join(lines) + "\n"


def ccdf_dat(histogram: LogHistogram, title: str = "ccdf") -> str:
    """Figure 13-15 style: latency (ms) vs complementary CDF."""
    lines = [f"# {title}", "# latency_ms ccdf"]
    for latency_s, fraction in histogram.ccdf():
        lines.append(f"{latency_s * 1000:.5f} {fraction:.6e}")
    return "\n".join(lines) + "\n"


def scatter_dat(
    points: Iterable[tuple[float, float, str]], title: str = "scatter"
) -> str:
    """Figure 16-18 style: duration vs max latency, labeled points."""
    lines = [f"# {title}", "# duration_s max_latency_s label"]
    for duration, max_latency, label in points:
        lines.append(f"{duration:.4f} {max_latency:.5f} {label}")
    return "\n".join(lines) + "\n"


def timeline_script(dat_name: str, title: str = "Service latency") -> str:
    """A gnuplot script matching the paper's latency-timeline panels."""
    return (
        "set logscale y\n"
        "set xlabel 'Time [s]'\n"
        "set ylabel 'Latency [ms]'\n"
        f"set title '{title}'\n"
        f"plot '{dat_name}' using 1:2 with lines title 'max', \\\n"
        f"     '{dat_name}' using 1:3 with lines title 'p: 0.99', \\\n"
        f"     '{dat_name}' using 1:4 with lines title 'p: 0.5', \\\n"
        f"     '{dat_name}' using 1:5 with lines title 'p: 0.25'\n"
    )


def ccdf_script(dat_name: str, title: str = "CCDF of per-record latencies") -> str:
    """A gnuplot script matching the paper's CCDF panels."""
    return (
        "set logscale xy\n"
        "set xlabel 'Latency [ms]'\n"
        "set ylabel 'CCDF'\n"
        f"set title '{title}'\n"
        f"plot '{dat_name}' using 1:2 with lines notitle\n"
    )


def export_timeline(
    timeline: LatencyTimeline,
    directory,
    name: str,
    title: Optional[str] = None,
) -> tuple[Path, Path]:
    """Write ``<name>.dat`` and ``<name>.gp`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    dat = directory / f"{name}.dat"
    script = directory / f"{name}.gp"
    dat.write_text(timeline_dat(timeline, title or name))
    script.write_text(timeline_script(dat.name, title or name))
    return dat, script


def export_ccdf(
    histogram: LogHistogram,
    directory,
    name: str,
    title: Optional[str] = None,
) -> tuple[Path, Path]:
    """Write CCDF ``.dat`` and ``.gp`` files under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    dat = directory / f"{name}.dat"
    script = directory / f"{name}.gp"
    dat.write_text(ccdf_dat(histogram, title or name))
    script.write_text(ccdf_script(dat.name, title or name))
    return dat, script
