"""Latency instrumentation.

The paper's harness records observed latency every 250 ms into histograms of
logarithmically sized bins (§5, setup) and reports timelines of max/p99/
p50/p25 (Figures 1, 5-12), CCDFs of per-record latency (Figures 13-15), and
per-migration maxima (Figures 16-19).  This module reproduces all of those
from the same primitive: a log-binned histogram.

Latency of an epoch is measured open-loop style: the difference between the
simulated time at which the output frontier passed the epoch and the time
the epoch's input was due to be injected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.runtime_events.events import TOPIC_FRONTIER

# Four sub-steps per power of two gives ~19 % bucket resolution.
_BUCKETS_PER_DOUBLING = 4
_MIN_LATENCY_S = 1e-6


class LogHistogram:
    """Histogram with logarithmically sized bins (weighted counts)."""

    def __init__(self) -> None:
        self._counts: dict[int, float] = {}
        self.total = 0.0
        self.max_value: Optional[float] = None

    @staticmethod
    def _bucket(value: float) -> int:
        value = max(value, _MIN_LATENCY_S)
        return int(math.floor(math.log2(value) * _BUCKETS_PER_DOUBLING))

    @staticmethod
    def _bucket_upper(bucket: int) -> float:
        return 2.0 ** ((bucket + 1) / _BUCKETS_PER_DOUBLING)

    def record(self, latency_s: float, weight: float = 1.0) -> None:
        """Record ``weight`` observations of ``latency_s``."""
        if weight <= 0:
            return
        bucket = self._bucket(latency_s)
        self._counts[bucket] = self._counts.get(bucket, 0.0) + weight
        self.total += weight
        if self.max_value is None or latency_s > self.max_value:
            self.max_value = latency_s

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram into this one."""
        for bucket, count in other._counts.items():
            self._counts[bucket] = self._counts.get(bucket, 0.0) + count
        self.total += other.total
        if other.max_value is not None:
            if self.max_value is None or other.max_value > self.max_value:
                self.max_value = other.max_value

    def percentile(self, q: float) -> Optional[float]:
        """Latency (seconds) at quantile ``q`` in [0, 1]; None when empty.

        Returns the upper edge of the bucket containing the quantile, except
        for the final bucket where the recorded maximum is returned.
        """
        if not 0 <= q <= 1:
            raise ValueError("quantile must be within [0, 1]")
        if self.total <= 0:
            return None
        threshold = q * self.total
        seen = 0.0
        buckets = sorted(self._counts)
        for bucket in buckets:
            seen += self._counts[bucket]
            if seen >= threshold:
                if bucket == buckets[-1] and self.max_value is not None:
                    return min(self._bucket_upper(bucket), self.max_value)
                return self._bucket_upper(bucket)
        return self.max_value

    def ccdf(self) -> list[tuple[float, float]]:
        """Complementary CDF: [(latency_s, fraction of observations > x)].

        One point per occupied bucket (at its upper edge), suitable for the
        log-log CCDF plots of Figures 13-15.
        """
        if self.total <= 0:
            return []
        points = []
        remaining = self.total
        for bucket in sorted(self._counts):
            remaining -= self._counts[bucket]
            points.append((self._bucket_upper(bucket), remaining / self.total))
        return points

    def is_empty(self) -> bool:
        return self.total <= 0


@dataclass
class WindowStats:
    """Latency summary of one 250 ms reporting window."""

    start_s: float
    max_s: float
    p99_s: float
    p50_s: float
    p25_s: float
    count: float


@dataclass
class LatencyTimeline:
    """Per-window latency summaries plus an overall histogram."""

    window_s: float = 0.25
    windows: dict[int, LogHistogram] = field(default_factory=dict)
    overall: LogHistogram = field(default_factory=LogHistogram)

    def record(self, at_s: float, latency_s: float, weight: float = 1.0) -> None:
        """Record an observation at simulated time ``at_s``."""
        index = int(at_s / self.window_s)
        window = self.windows.get(index)
        if window is None:
            window = self.windows[index] = LogHistogram()
        window.record(latency_s, weight)
        self.overall.record(latency_s, weight)

    def series(self) -> list[WindowStats]:
        """Chronological window summaries."""
        out = []
        for index in sorted(self.windows):
            hist = self.windows[index]
            out.append(
                WindowStats(
                    start_s=index * self.window_s,
                    max_s=hist.max_value or 0.0,
                    p99_s=hist.percentile(0.99) or 0.0,
                    p50_s=hist.percentile(0.50) or 0.0,
                    p25_s=hist.percentile(0.25) or 0.0,
                    count=hist.total,
                )
            )
        return out

    def max_between(self, start_s: float, end_s: float) -> float:
        """Largest latency observed in [start_s, end_s)."""
        best = 0.0
        for index, hist in self.windows.items():
            at = index * self.window_s
            if start_s <= at < end_s and hist.max_value is not None:
                best = max(best, hist.max_value)
        return best

    def max_outside(self, start_s: float, end_s: float) -> float:
        """Largest latency observed outside [start_s, end_s) (steady state)."""
        best = 0.0
        for index, hist in self.windows.items():
            at = index * self.window_s
            if not (start_s <= at < end_s) and hist.max_value is not None:
                best = max(best, hist.max_value)
        return best


class EpochLatencyRecorder:
    """Turns output-frontier movement into latency observations.

    Epochs are integer millisecond timestamps spaced ``granularity_ms``
    apart.  When the probed operator's output frontier passes an epoch
    ``t``, the epoch's latency is ``now - t/1000``: the input for ``t`` was
    injected at simulated time ``t/1000`` by the open-loop source, so this
    is exactly the paper's service latency.  Observations are weighted by
    the number of records the source injected for that epoch.

    The recorder is a trace-bus subscriber on the ``frontier`` topic — it
    observes the same :class:`~repro.runtime_events.events.FrontierAdvanced`
    stream any other consumer would, filtered to the probed operator.
    """

    def __init__(
        self,
        runtime,
        probe,
        granularity_ms: int,
        timeline: Optional[LatencyTimeline] = None,
        dilation: int = 1,
    ) -> None:
        self.runtime = runtime
        self.granularity_ms = granularity_ms
        self.dilation = dilation
        self._op_index = probe.op_index
        # Epoch step in the (possibly dilated) event-time domain.
        self._step = granularity_ms * dilation
        self.timeline = timeline if timeline is not None else LatencyTimeline()
        self._weights: dict[int, float] = {}
        self._completed_through = -self._step
        self._max_epoch = -self._step
        self._unsubscribe = runtime.sim.trace.subscribe(
            self._on_event, topics=(TOPIC_FRONTIER,)
        )

    def close(self) -> None:
        """Detach from the trace bus."""
        self._unsubscribe()

    def _on_event(self, event) -> None:
        if event.op == self._op_index:
            self._on_advance(event.frontier)

    def note_injected(self, epoch_ms: int, records: float) -> None:
        """The source injected ``records`` records for ``epoch_ms``."""
        self._weights[epoch_ms] = self._weights.get(epoch_ms, 0.0) + records
        if epoch_ms > self._max_epoch:
            self._max_epoch = epoch_ms

    def _on_advance(self, frontier) -> None:
        elements = frontier.elements()
        if elements:
            low = min(elements)
            limit = low - self._step
        else:
            limit = self._max_epoch
        now = self.runtime.sim.now
        g = self._step
        scale = 1000.0 * self.dilation
        epoch = self._completed_through + g
        while epoch <= limit:
            weight = self._weights.pop(epoch, 1.0)
            latency = now - epoch / scale
            if latency > 0:
                self.timeline.record(now, latency, weight)
            epoch += g
        self._completed_through = max(self._completed_through, limit)
