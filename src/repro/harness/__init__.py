"""Measurement harness: open-loop load, latency recording, experiments.

Mirrors the paper's test harness (§5): input is supplied at a fixed rate
regardless of system responsiveness, latency is recorded into log-binned
histograms sampled every 250 ms, and experiments consist of a warmup, one or
more migrations, and summary extraction (max latency and duration per
migration; memory timelines per process).
"""

from repro.harness.export import export_ccdf, export_timeline
from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    MigrationExperiment,
    run_count_experiment,
)
from repro.harness.latency import (
    EpochLatencyRecorder,
    LatencyTimeline,
    LogHistogram,
    WindowStats,
)
from repro.harness.openloop import Lcg, OpenLoopSource
from repro.harness.workloads import CountWorkload, ModeledCountState, count_fold

__all__ = [
    "CountWorkload",
    "EpochLatencyRecorder",
    "ExperimentConfig",
    "ExperimentResult",
    "Lcg",
    "LatencyTimeline",
    "LogHistogram",
    "MigrationExperiment",
    "ModeledCountState",
    "OpenLoopSource",
    "WindowStats",
    "count_fold",
    "export_ccdf",
    "export_timeline",
    "run_count_experiment",
]
