"""Delta migration: shipped bytes and move duration vs dirty fraction.

The base-then-delta protocol ships each moving bin's full snapshot off the
critical path when the migration is announced, and only the keys dirtied
since when the move executes.  The execution-time cost therefore scales
with the *dirty fraction*, not the bin size — the property this sweep
charts.

For each fraction f a WAL-backed bin with ``KEYS`` keys takes a base
snapshot, dirties f of its keys, and extracts the delta; shipped bytes are
the backend's serialized payload sizes and durations come from the
planner's cost model (prior rates, chaos-scale bandwidth), so duration is
the same per-byte pricing ``predict_plan_s(dirty_fraction=...)`` uses.

Acceptance line: at 10% dirty the delta ships < 25% of the whole-bin
bytes.
"""

from _common import run_once

from repro.harness.report import format_bytes, print_table
from repro.megaphone.bins import BinStore
from repro.planner.cost import MigrationCostModel
from repro.state.wal import WalRegistry

KEYS = 512
BYTES_PER_KEY = 2048.0
FRACTIONS = (0.01, 0.05, 0.10, 0.25, 0.50, 1.00)
# The chaos-scale fabric (4 MB/s): slow enough that shipped bytes, not
# fixed overheads, dominate the move.
BANDWIDTH = 4e6


def _extract_pair(fraction):
    """(base, delta, full) payloads for one bin at ``fraction`` dirty."""
    store = BinStore(
        num_bins=2,
        state_factory=dict,
        bytes_per_key=BYTES_PER_KEY,
        worker_id=0,
        backend="wal",
        backend_options={"wal_registry": WalRegistry()},
    )
    store.create(0)
    state = store.get(0).state
    for key in range(KEYS):
        state[key] = key
    store.note_applied(0, KEYS)
    base = store.extract(0, remove=False)
    dirty = max(1, round(fraction * KEYS))
    for key in range(dirty):
        state[key] = -key
    store.note_applied(0, dirty)
    delta = store.extract(0, remove=False, dirty_since=base.base_epoch)
    full = store.extract(0, remove=False)
    return base, delta, full


def bench_delta_dirty(benchmark, sink):
    sweep = run_once(
        benchmark, lambda: [(f, _extract_pair(f)) for f in FRACTIONS]
    )

    model = MigrationCostModel(bandwidth_bytes_per_s=BANDWIDTH)
    rows = []
    ratios = {}
    durations = {}
    for fraction, (base, delta, full) in sweep:
        assert delta.kind == "delta" and full.kind == "full"
        ratio = delta.size_bytes / full.size_bytes
        ratios[fraction] = ratio
        durations[fraction] = model.predict_move_s(
            delta.size_bytes, kind="delta"
        )
        rows.append(
            (
                f"{fraction * 100:5.1f}%",
                format_bytes(delta.size_bytes),
                format_bytes(full.size_bytes),
                f"{ratio * 100:5.1f}%",
                f"{durations[fraction] * 1000:8.2f}",
            )
        )
    full_move_s = model.predict_move_s(sweep[0][1][2].size_bytes, kind="full")
    print_table(
        f"delta shipment vs dirty fraction ({KEYS} keys/bin, "
        f"{format_bytes(int(BYTES_PER_KEY))}/key)",
        ["dirty", "delta bytes", "full bytes", "ratio", "move [ms]"],
        rows,
        out=sink,
    )
    sink(f"whole-bin move {full_move_s * 1000:8.2f} ms")

    # Shipped bytes (hence durations) grow monotonically with dirtiness...
    ordered = [ratios[f] for f in FRACTIONS]
    assert ordered == sorted(ordered)
    assert durations[FRACTIONS[0]] < durations[FRACTIONS[-1]]
    # ...a fully-dirtied bin ships (at least) the whole bin again...
    assert ratios[1.00] >= 0.9
    # ...and the acceptance line: 10% dirty ships < 25% of the bin.
    assert ratios[0.10] < 0.25
    assert durations[0.10] < 0.25 * full_move_s
