"""Figure 15: key-count overhead at a 8192x10^6-key domain.

The large domain leaves the overhead picture unchanged — the knee is a
function of the bin count (routing table / bin bookkeeping), not of the
key population, which is the paper's point in running both domains.
"""

from _common import run_once
from _overhead_fig import check_overhead_shape, report_overhead, run_overhead

DOMAIN = 8192 * 10**6


def bench_fig15_keycount_large(benchmark, sink):
    results = run_once(benchmark, lambda: run_overhead(DOMAIN, variant="key"))
    report_overhead("Figure 15", "key-count, 8192M keys", results, sink)
    check_overhead_shape(results)
