"""Figure 11: NEXMark Q7 (highest bid per window; minimal state).

Q7 keeps a single value per window, so there is essentially nothing to
move: the paper observes no distinction between all-at-once and batched.
"""

from _common import run_once
from _nexmark_fig import report_figure, run_figure


def bench_fig11_q7(benchmark, sink):
    results = run_once(benchmark, lambda: run_figure(7, sink))
    report_figure("Figure 11", 7, results, sink)
    spike = results["all-at-once"].migration_max_latency(1)
    batched = results["batched"].migration_max_latency(1)
    # Minimal state: both strategies in the same (small) ballpark.
    assert spike < 10 * batched + 0.01, (spike, batched)
    assert spike < 0.25, spike
