"""Figure 12: NEXMark Q8 (twelve-hour windowed join) with time dilation.

The paper dilates event time by 79, so the reconfiguration lands ~17.5 h
into the first twelve-hour window: the retained person/seller sets are at
their peak.  All-at-once spikes in proportion; batched stays low.
"""

from _common import run_once
from _nexmark_fig import report_figure, run_figure
from repro.nexmark.config import NexmarkConfig

DILATION = 79
NEX = NexmarkConfig(dilation=DILATION, state_bytes_scale=8192.0)


def bench_fig12_q8(benchmark, sink):
    results = run_once(
        benchmark, lambda: run_figure(8, sink, dilation=DILATION, nexmark=NEX)
    )
    report_figure("Figure 12", 8, results, sink)
    spike = results["all-at-once"].migration_max_latency(1)
    batched = results["batched"].migration_max_latency(1)
    assert spike > 3 * batched, (spike, batched)
