"""Figure 18: domain and bin count grow proportionally (fixed keys/bin).

The paper fixes 4x10^6 keys per bin and doubles both together: with the
migration granularity (per-bin state) constant, fluid/batched max latency
stays flat while every strategy's duration grows; all-at-once latency
keeps growing with the total state.
"""

from _common import run_once
from _sweep_fig import by_strategy, report_sweep, run_point

KEYS_PER_BIN = 4 * 10**6
BINS = (64, 128, 256, 512, 1024, 2048, 4096, 8192)


def bench_fig18_proportional(benchmark, sink):
    def run():
        points = []
        for bins in BINS:
            domain = bins * KEYS_PER_BIN
            for strategy in ("all-at-once", "fluid", "batched"):
                points.append(run_point(strategy, num_bins=bins, domain=domain))
        return points

    points = run_once(benchmark, run)
    report_sweep(
        "Figure 18", f"fixed {KEYS_PER_BIN:,} keys/bin", points, sink, "bins"
    )

    fluid = {p["bins"]: p for p in by_strategy(points, "fluid")}
    batched = {p["bins"]: p for p in by_strategy(points, "batched")}
    allatonce = {p["bins"]: p for p in by_strategy(points, "all-at-once")}
    lo, hi = BINS[0], BINS[-1]
    # Fixed per-bin state: fluid/batched max latency stays flat (within 3x
    # over a 128x growth in total state)...
    assert fluid[hi]["max_latency"] < 3 * fluid[lo]["max_latency"]
    assert batched[hi]["max_latency"] < 3 * batched[lo]["max_latency"]
    # ...while durations grow...
    assert fluid[hi]["duration"] > 8 * fluid[lo]["duration"]
    # ...and all-at-once latency grows with total state.
    assert allatonce[hi]["max_latency"] > 8 * allatonce[lo]["max_latency"]
