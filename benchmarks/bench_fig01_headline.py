"""Figure 1: the headline comparison.

A workload migrating one billion keys (8 GB of state) under three
strategies: all-at-once (prior work), Megaphone fluid, and Megaphone
optimized.  The paper's plot shows service-latency timelines around the
migration; all-at-once peaks orders of magnitude above the fine-grained
strategies.

Scaled-down substitution: the key domain stays at 10^9 (state is modeled,
8 B/key = 8 GB), while the materialized record rate is scaled per
DESIGN.md.  The reported shape — who spikes, by how much — is the
reproduction target, not absolute seconds.
"""

from _common import count_config, run_once
from repro.harness.experiment import run_count_experiment
from repro.harness.report import (
    format_duration,
    format_latency,
    print_phase_breakdown,
    print_table,
    print_timeline,
)

DOMAIN = 10**9  # one billion keys, 8 GB at 8 B/key
MIGRATE_AT = 3.0


def _run(strategy):
    cfg = count_config(
        domain=DOMAIN,
        duration_s=8.0,
        migrate_at_s=(MIGRATE_AT,),
        strategy=strategy,
        batch_size=64,
        collect_trace=True,
    )
    return run_count_experiment(cfg)


def bench_fig01_headline(benchmark, sink):
    def run():
        return {
            strategy: _run(strategy)
            for strategy in ("all-at-once", "fluid", "optimized")
        }

    results = run_once(benchmark, run)

    rows = []
    for strategy, res in results.items():
        rows.append(
            (
                strategy,
                format_latency(res.migration_max_latency(0)),
                format_duration(res.migration_duration(0)),
                format_latency(res.steady_max_latency()),
            )
        )
    print_table(
        "Figure 1: migrating 1G keys (8 GB modeled state)",
        ["strategy", "max latency (migration)", "duration", "steady max"],
        rows,
        out=sink,
    )
    for strategy, res in results.items():
        print_timeline(
            f"Figure 1 timeline: {strategy}",
            [s for s in res.timeline.series() if MIGRATE_AT - 1 <= s.start_s],
            out=sink,
        )
    for strategy, res in results.items():
        print_phase_breakdown(
            f"Figure 1 migration phases: {strategy}",
            res.migration_trace.phase_breakdown(),
            out=sink,
            max_rows=8,
        )

    spike = results["all-at-once"].migration_max_latency(0)
    fluid = results["fluid"].migration_max_latency(0)
    optimized = results["optimized"].migration_max_latency(0)
    # The paper's separation: orders of magnitude.
    assert spike > 10 * fluid, (spike, fluid)
    assert spike > 10 * optimized, (spike, optimized)
    # Optimized finishes faster than fluid without losing the latency win.
    assert results["optimized"].migration_duration(0) < results[
        "fluid"
    ].migration_duration(0)
