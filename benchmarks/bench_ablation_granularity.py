"""Ablation: control/progress coordination granularity.

Megaphone coordinates migrations through logical-time frontiers; how often
the control stream's epoch advances bounds how quickly a reconfiguration
becomes final and how quickly step completion is observed.  Coarser epochs
stretch every step of a fluid migration (and add buffering latency for
records whose configuration is not yet final).
"""

from _common import count_config, run_once
from repro.harness.experiment import run_count_experiment
from repro.harness.report import format_duration, format_latency, print_table

DOMAIN = 64 * 10**6
GRANULARITIES_MS = (5, 10, 50)


def _run(granularity_ms):
    cfg = count_config(
        num_bins=256,
        bandwidth_bytes_per_s=10e9,
        domain=DOMAIN,
        duration_s=6.0,
        granularity_ms=granularity_ms,
        migrate_at_s=(2.0,),
        strategy="fluid",
    )
    return run_count_experiment(cfg)


def bench_ablation_granularity(benchmark, sink):
    results = run_once(
        benchmark, lambda: {g: _run(g) for g in GRANULARITIES_MS}
    )
    rows = [
        (
            f"{g} ms",
            format_duration(res.migration_duration(0)),
            format_latency(res.migration_max_latency(0)),
            format_latency(res.steady_max_latency()),
        )
        for g, res in results.items()
    ]
    print_table(
        "Ablation: control-epoch granularity (fluid migration)",
        ["epoch granularity", "migration duration", "max latency", "steady max"],
        rows,
        out=sink,
    )
    # Coarser coordination stretches the migration.
    assert results[50].migration_duration(0) > 2 * results[5].migration_duration(0)
