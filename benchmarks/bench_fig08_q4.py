"""Figure 8: NEXMark Q4 (closing-price averages; bounded auction state).

The paper sees an all-at-once spike above two seconds and batched staying
around 100 ms; the reproduction target is the order-of-magnitude gap.
"""

from _common import run_once
from _nexmark_fig import report_figure, run_figure
from repro.nexmark.config import NexmarkConfig

NEX = NexmarkConfig(state_bytes_scale=16384.0)


def bench_fig08_q4(benchmark, sink):
    results = run_once(benchmark, lambda: run_figure(4, sink, nexmark=NEX))
    report_figure("Figure 8", 4, results, sink)
    spike = results["all-at-once"].migration_max_latency(1)
    batched = results["batched"].migration_max_latency(1)
    assert spike > 3 * batched, (spike, batched)
