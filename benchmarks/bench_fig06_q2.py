"""Figure 6: NEXMark Q2 latency around reconfigurations.

Q2 is a stateless filter: like Q1, reconfiguration moves no state and the
latency timeline stays flat.
"""

from _common import run_once
from _nexmark_fig import report_figure, run_figure


def bench_fig06_q2(benchmark, sink):
    results = run_once(benchmark, lambda: run_figure(2, sink, stateful=False))
    report_figure("Figure 6", 2, results, sink, stateful=False)
    for strategy, res in results.items():
        spike = res.migration_max_latency(0)
        steady = res.steady_max_latency()
        assert spike < 10 * steady + 0.005, (strategy, spike, steady)
