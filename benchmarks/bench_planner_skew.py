"""Closed-loop planner on a hot-key-skewed workload.

A Zipf-skewed key distribution concentrates load on a few bins.  The
static baseline (planner in propose-only mode, no migrations) stays
imbalanced for the whole run; the closed-loop planner detects the skew
from record-load telemetry, searches a balanced target, and migrates —
ending within the paper-style 1.25x max/mean acceptance line while
keeping max latency inside the batched-strategy envelope.  A proportional
state sweep then checks the calibrated cost model's per-step predictions
stay within 2x of the observed step durations (the Figure 18 angle:
migration cost proportional to moved state).
"""

from _common import count_config, run_once

from repro.harness.experiment import run_count_experiment
from repro.planner import PlannerConfig, TelemetryConfig


def skew_config(**overrides):
    defaults = dict(
        num_workers=4,
        workers_per_process=2,
        num_bins=64,
        domain=1 << 12,
        rate=20_000.0,
        duration_s=8.0,
        workload="skewed",
        hot_keys=12,
        hot_fraction=0.85,
        zipf_exponent=0.8,
        cost=None,
    )
    defaults.update(overrides)
    return count_config(**defaults)


def planner_config(**overrides) -> PlannerConfig:
    defaults = dict(
        telemetry=TelemetryConfig(sample_s=0.25, window_s=1.0),
        decide_s=0.5,
        start_s=1.0,
        cooldown_s=1.5,
        min_gain=0.05,
    )
    defaults.update(overrides)
    return PlannerConfig(**defaults)


def step_prediction_ratios(result):
    """(predicted, observed) totals over completed steps, calibrated model."""
    model = result.cost_model
    trace = result.migration_trace
    predicted = observed = 0.0
    for outcome in trace.outcome_rows():
        if outcome.abandoned or outcome.duration_s <= 0:
            continue
        moves = [
            (t.src, t.dst, t.size_bytes)
            for (time, _), t in trace.bins.items()
            if time == outcome.time and t.src is not None
        ]
        if not moves:
            continue
        predicted += model.predict_step_s(moves)
        observed += outcome.duration_s
    return predicted, observed


def bench_planner_skew(benchmark, sink):
    def run():
        planner_run = run_count_experiment(
            skew_config(planner=planner_config(), collect_trace=True)
        )
        static_run = run_count_experiment(
            skew_config(planner=planner_config(propose_only=True))
        )
        batched_run = run_count_experiment(
            skew_config(migrate_at_s=(3.0,), strategy="batched", batch_size=16)
        )
        sweep = [
            run_count_experiment(
                skew_config(
                    planner=planner_config(),
                    collect_trace=True,
                    bytes_per_key=bytes_per_key,
                )
            )
            for bytes_per_key in (8.0, 64.0, 256.0)
        ]
        return planner_run, static_run, batched_run, sweep

    planner_run, static_run, batched_run, sweep = run_once(benchmark, run)

    sink("planner vs static on hot-key skew (4 workers, 64 bins)")
    sink(f"  static final imbalance   {static_run.final_imbalance:7.2f}x"
         f"  migrations {len(static_run.migrations)}")
    sink(f"  planner final imbalance  {planner_run.final_imbalance:7.2f}x"
         f"  migrations {len(planner_run.migrations)}"
         f"  adopted {len(planner_run.planner.adopted)}")
    sink(f"  planner max latency  {planner_run.overall_max_latency() * 1000:8.2f} ms")
    sink(f"  batched max latency  {batched_run.overall_max_latency() * 1000:8.2f} ms")

    # The static baseline stays skewed; the planner converges.
    assert static_run.final_imbalance > 1.5
    assert not static_run.migrations
    assert planner_run.migrations
    assert planner_run.final_imbalance <= 1.25
    # Latency stays within the batched-strategy envelope.
    assert planner_run.overall_max_latency() <= 2.0 * batched_run.overall_max_latency()

    sink("cost-model calibration, proportional state sweep")
    for bytes_per_key, result in zip((8.0, 64.0, 256.0), sweep):
        predicted, observed = step_prediction_ratios(result)
        ratio = predicted / observed if observed else float("nan")
        sink(f"  bytes/key {bytes_per_key:6.0f}  predicted {predicted * 1000:7.2f} ms"
             f"  observed {observed * 1000:7.2f} ms  ratio {ratio:5.2f}")
        assert result.cost_model.calibrated
        # Predictions within 2x of observed (Fig 18 acceptance).
        assert 0.5 <= ratio <= 2.0
