"""Table 1: lines of code of the NEXMark query implementations.

The paper compares hand-tuned native implementations against Megaphone's
stateful operator interface; for most stateful queries the native version
is longer because frontier bookkeeping and pending-work management are
hand-written.  This benchmark counts the non-blank, non-comment source
lines of both variants in this reproduction and prints them next to the
paper's numbers.
"""

import inspect

from repro.harness.report import print_table
from repro.nexmark.queries import QUERIES, common

PAPER_NATIVE = {1: 12, 2: 14, 3: 58, 4: 128, 5: 73, 6: 130, 7: 55, 8: 58}
PAPER_MEGAPHONE = {1: 16, 2: 18, 3: 41, 4: 74, 5: 46, 6: 74, 7: 54, 8: 29}

# Source objects that make up each variant.  The closed-auction subplan is
# shared by Q4 and Q6 and counted for both, as in the paper.
_SHARED_NATIVE = [common._NativeClosedAuctionsLogic, common.closed_auctions_native]
_SHARED_MEGA = [common.closed_auctions_fold, common.closed_auctions_megaphone]


def _members(module, variant):
    out = []
    if variant == "native":
        out.append(module.native)
        for name, obj in vars(module).items():
            if inspect.isclass(obj) and name.startswith("_Native"):
                out.append(obj)
    else:
        out.append(module.megaphone)
    return out


def _loc(objects) -> int:
    total = 0
    for obj in objects:
        source = inspect.getsource(obj)
        for line in source.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            total += 1
    return total


def count_loc(query: int, variant: str) -> int:
    module = QUERIES[query]
    objects = _members(module, variant)
    if query in (4, 6):
        objects = objects + (_SHARED_NATIVE if variant == "native" else _SHARED_MEGA)
    if query == 5 and variant == "megaphone":
        # Q5's megaphone variant reuses the native global-max stage.
        objects = [module.megaphone, module._NativeGlobalMaxLogic]
    return _loc(objects)


def bench_table1_lines_of_code(benchmark, sink):
    def run():
        rows = []
        for query in sorted(QUERIES):
            native = count_loc(query, "native")
            mega = count_loc(query, "megaphone")
            rows.append(
                (
                    f"Q{query}",
                    native,
                    mega,
                    PAPER_NATIVE[query],
                    PAPER_MEGAPHONE[query],
                    "yes" if (mega < native) == (PAPER_MEGAPHONE[query] < PAPER_NATIVE[query])
                    or query in (1, 2)
                    else "no",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Table 1: query implementation lines of code (ours vs paper)",
        ["query", "native", "megaphone", "paper native", "paper megaphone", "same direction"],
        rows,
        out=sink,
    )
    # The paper's stateful queries (3-6, 8) are shorter under Megaphone.
    for label, native, mega, *_ in rows:
        if label in ("Q3", "Q4", "Q6", "Q8"):
            assert mega < native, f"{label}: expected Megaphone variant shorter"
