"""Figure 9: NEXMark Q5 (hot items, sliding window) with time dilation.

The paper dilates event time by 60 so the sixty-minute sliding window
reports once per processing-time second.  All-at-once spikes an order of
magnitude above the per-period events; batched is indistinguishable from
steady state.

Scaling note: the reproduction's record-rate scaling (fewer, costlier
records — see _common.py) does not shrink Q5's per-window flush work,
which in the paper is amortized over 200x more records.  To keep the
flush-chain overhead at the paper's relative level, this figure runs Q5
with 1024 bins and a 2-event-second report period (same 60 s window).
"""

from _common import run_once
from _nexmark_fig import report_figure, run_figure
from repro.nexmark.config import NexmarkConfig

DILATION = 60
NEX = NexmarkConfig(
    dilation=DILATION,
    state_bytes_scale=8192.0,
    q5_period_ms=2_000,
)


def bench_fig09_q5(benchmark, sink):
    results = run_once(
        benchmark,
        lambda: run_figure(
            5, sink, dilation=DILATION, nexmark=NEX, num_bins=1024,
            batch_size=32,
        ),
    )
    report_figure("Figure 9", 5, results, sink)
    spike = results["all-at-once"].migration_max_latency(1)
    batched = results["batched"].migration_max_latency(1)
    assert spike > 3 * batched, (spike, batched)
