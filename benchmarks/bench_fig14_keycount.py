"""Figure 14: key-count overhead, 256x10^6 keys, 4x10^6 updates/s.

Like Figure 13, but with dense-array bins ("key count"), whose per-record
cost is lower; the bin-count knee is the same.
"""

from _common import run_once
from _overhead_fig import check_overhead_shape, report_overhead, run_overhead

DOMAIN = 256 * 10**6


def bench_fig14_keycount(benchmark, sink):
    results = run_once(benchmark, lambda: run_overhead(DOMAIN, variant="key"))
    report_overhead("Figure 14", "key-count, 256M keys", results, sink)
    check_overhead_shape(results)
    # Dense arrays are cheaper than hash maps at the same configuration
    # (checked against Figure 13 by EXPERIMENTS.md).
