"""Figure 5: NEXMark Q1 latency around reconfigurations.

Q1 is stateless (currency conversion): the migration moves no state, so no
latency spike should occur — this is the harness baseline.
"""

from _common import run_once
from _nexmark_fig import report_figure, run_figure


def bench_fig05_q1(benchmark, sink):
    results = run_once(benchmark, lambda: run_figure(1, sink, stateful=False))
    report_figure("Figure 5", 1, results, sink, stateful=False)
    for strategy, res in results.items():
        spike = res.migration_max_latency(0)
        steady = res.steady_max_latency()
        # No state: the migration window looks like steady state.
        assert spike < 10 * steady + 0.005, (strategy, spike, steady)
