"""Figure 20 variant: tiered state backend (resident vs spilled timeline).

Same workload as ``bench_fig20_memory`` — key-count with 16x10^9 keys and
4096 bins, migrations mid-run — but bin state lives on the ``tiered``
backend with a hot-tier capacity below the per-worker steady state, so the
least-recently-accessed bins are codec-spilled to the modeled cold tier.

Expected shape:

* every process's memory timeline reports non-zero ``spilled_bytes``
  alongside RSS (the resident/spilled breakdown the backend exposes);
* steady RSS sits *below* the flat-backend level by roughly the spilled
  volume (spilled bytes left RAM — that is the point of spilling);
* the all-at-once transient spike survives: the spike is serialized state
  backing up in the *send queues*, which tiering does not touch.
"""

from _common import WORKERS, count_config, run_once
from repro.harness.experiment import run_count_experiment
from repro.harness.report import format_bytes, print_table

DOMAIN = 16 * 10**9
BINS = 4096
MIGRATIONS = (2.0, 4.0)

# Steady modeled state is DOMAIN/WORKERS * 8 B = 8 GB per worker; cap the
# hot tier at 75% of that so roughly a quarter of each worker's bins sit
# in the cold tier once the key space has filled in.
HOT_CAPACITY = int(DOMAIN // WORKERS * 8 * 0.75)


def _run(strategy, state_backend="tiered", hot_capacity=HOT_CAPACITY):
    cfg = count_config(
        num_bins=BINS,
        domain=DOMAIN,
        duration_s=6.0,
        migrate_at_s=MIGRATIONS,
        strategy=strategy,
        batch_size=16,
        sample_memory=True,
        memory_sample_s=0.05,
        bandwidth_bytes_per_s=1.25e9,
        state_backend=state_backend,
        hot_capacity_bytes=hot_capacity if state_backend == "tiered" else None,
    )
    return run_count_experiment(cfg)


def bench_fig20_tiered(benchmark, sink):
    results = run_once(
        benchmark,
        lambda: {
            "all-at-once": _run("all-at-once"),
            "batched": _run("batched"),
            "dict/batched": _run("batched", state_backend="dict"),
        },
    )

    rows = []
    overshoots = {}
    steadies = {}
    spilled_peaks = {}
    for label, res in results.items():
        worst_overshoot = 0.0
        steady = 0.0
        spilled = 0
        for tl in res.memory:
            base = max(tl.at(1.8), tl.at(5.8))
            steady = max(steady, base)
            worst_overshoot = max(worst_overshoot, tl.peak() - base)
            spilled = max(spilled, tl.peak_spilled())
        overshoots[label] = worst_overshoot
        steadies[label] = steady
        spilled_peaks[label] = spilled
        rows.append(
            (
                label,
                format_bytes(steady),
                format_bytes(worst_overshoot),
                format_bytes(spilled),
            )
        )
    print_table(
        "Figure 20 (tiered): steady RSS, migration overshoot, cold tier",
        ["run", "steady RSS", "transient overshoot", "peak spilled"],
        rows,
        out=sink,
    )

    res = results["batched"]
    series = [
        (
            f"{s.time:.2f}",
            format_bytes(s.rss_bytes),
            format_bytes(s.spilled_bytes),
        )
        for s in res.memory[0].samples
        if 1.5 <= s.time <= 5.5
    ]
    print_table(
        "Figure 20 (tiered) timeline (process 0): batched",
        ["time [s]", "RSS (resident)", "spilled"],
        series[::4],
        out=sink,
    )

    # The cold tier is in use on every tiered process timeline...
    for label in ("all-at-once", "batched"):
        for tl in results[label].memory:
            assert tl.peak_spilled() > 0, (label, tl.process)
    # ...and never on the flat backend.
    assert spilled_peaks["dict/batched"] == 0
    # Spilling moved steady state out of RAM relative to the flat backend.
    assert steadies["batched"] < steadies["dict/batched"]
    # The all-at-once spike is send-queue backlog, not state residence:
    # tiering must not hide it.
    assert overshoots["all-at-once"] > 3 * overshoots["batched"]
