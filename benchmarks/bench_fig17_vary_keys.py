"""Figure 17: migration latency vs duration as the key domain varies.

Fixed bin count, domain from 256x10^6 to 32768x10^6 keys by factors of
two (state size is modeled, so the paper's full range is reachable).
Expected shape: per-bin state grows with the domain, so duration and the
fluid/batched max latency grow proportionally; all-at-once max latency
grows with the total state.
"""

from _common import PAPER_BINS, run_once
from _sweep_fig import by_strategy, report_sweep, run_point

DOMAINS = tuple(d * 10**6 for d in (256, 512, 1024, 2048, 4096, 8192, 16384, 32768))


def bench_fig17_vary_keys(benchmark, sink):
    def run():
        points = []
        for domain in DOMAINS:
            for strategy in ("all-at-once", "fluid", "batched"):
                points.append(
                    run_point(strategy, num_bins=PAPER_BINS, domain=domain)
                )
        return points

    points = run_once(benchmark, run)
    report_sweep(
        "Figure 17", f"vary domain, {PAPER_BINS} bins", points, sink, "domain"
    )

    allatonce = {p["domain"]: p for p in by_strategy(points, "all-at-once")}
    fluid = {p["domain"]: p for p in by_strategy(points, "fluid")}
    lo, hi = DOMAINS[0], DOMAINS[-1]
    # All-at-once max latency scales with total state (128x domain growth).
    assert allatonce[hi]["max_latency"] > 20 * allatonce[lo]["max_latency"]
    # Fluid duration grows with the domain too.
    assert fluid[hi]["duration"] > 4 * fluid[lo]["duration"]
    # Within any domain, all-at-once has the highest latency and lowest
    # duration of the three strategies.
    for domain in DOMAINS:
        group = [p for p in points if p["domain"] == domain]
        worst = max(group, key=lambda p: p["max_latency"])
        fastest = min(group, key=lambda p: p["duration"])
        assert worst["strategy"] == "all-at-once"
        assert fastest["strategy"] == "all-at-once"
