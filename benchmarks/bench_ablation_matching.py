"""Ablation: bipartite matching of non-interfering moves (paper §4.4).

Grouping moves with disjoint (source, destination) pairs lets one step
carry several bins while each worker still serializes at most one — the
step count drops towards the per-worker maximum without giving up the
fluid strategy's latency bound.
"""

from _common import count_config, run_once
from repro.harness.experiment import run_count_experiment
from repro.harness.report import format_duration, format_latency, print_table

DOMAIN = 4096 * 10**6
BINS = 1024


def _run(strategy):
    cfg = count_config(
        num_bins=BINS,
        domain=DOMAIN,
        duration_s=6.0,
        migrate_at_s=(2.0,),
        strategy=strategy,
    )
    return run_count_experiment(cfg)


def bench_ablation_matching(benchmark, sink):
    results = run_once(
        benchmark, lambda: {s: _run(s) for s in ("fluid", "optimized")}
    )
    rows = [
        (
            strategy,
            len(res.migrations[0].steps),
            format_latency(res.migration_max_latency(0)),
            format_duration(res.migration_duration(0)),
        )
        for strategy, res in results.items()
    ]
    print_table(
        "Ablation: bipartite matching (optimized) vs one-bin-at-a-time (fluid)",
        ["strategy", "steps", "max latency", "duration"],
        rows,
        out=sink,
    )
    fluid, optimized = results["fluid"], results["optimized"]
    # Matching collapses the step count...
    assert len(optimized.migrations[0].steps) < len(fluid.migrations[0].steps) / 4
    # ...and the duration, without blowing up the per-step latency.
    assert optimized.migration_duration(0) < fluid.migration_duration(0)
    assert optimized.migration_max_latency(0) < 20 * fluid.migration_max_latency(0)
