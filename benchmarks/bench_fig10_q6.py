"""Figure 10: NEXMark Q6 (per-seller closing averages).

Q6 shares the winning-bid subplan with Q4, and the paper notes the result
resembles Figure 8 for that reason: a large all-at-once spike, batched an
order of magnitude lower.
"""

from _common import run_once
from _nexmark_fig import report_figure, run_figure
from repro.nexmark.config import NexmarkConfig

NEX = NexmarkConfig(state_bytes_scale=16384.0)


def bench_fig10_q6(benchmark, sink):
    results = run_once(benchmark, lambda: run_figure(6, sink, nexmark=NEX))
    report_figure("Figure 10", 6, results, sink)
    spike = results["all-at-once"].migration_max_latency(1)
    batched = results["batched"].migration_max_latency(1)
    assert spike > 3 * batched, (spike, batched)
