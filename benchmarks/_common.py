"""Shared benchmark configurations.

The paper's testbed is 4 machines x 4 workers at 4x10^6 records/s with up
to 32x10^9 keys.  The simulation keeps the cluster shape (16 workers, 4 per
process) but scales the *materialized* record rate down and the modeled
per-record cost up so the operating point (utilization) matches; key
domains stay at paper scale because bin state is modeled, not materialized
(DESIGN.md, substitution 2).
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentConfig
from repro.sim.cost import CostModel

# Paper: 16 workers over 4 processes.
WORKERS = 16
WORKERS_PER_PROCESS = 4

# The paper drives 4e6 records/s into 16 workers (~250k/s/worker).  We
# materialize RATE_SCALE times fewer records and make each record
# RATE_SCALE times more expensive, preserving utilization and latency
# behaviour while keeping wall-clock time tractable.
RATE_SCALE = 200.0
PAPER_RATE = 4e6
SIM_RATE = PAPER_RATE / RATE_SCALE

# Per-record CPU at the simulated operating point: the paper's NEXMark
# deployment runs well below saturation at 4M/s; ~0.25us/record/worker
# (Rust) becomes 50us at our scale, i.e. ~25% utilization per worker at
# the headline rate.
BASE_COST = CostModel(
    record_cost=0.25e-6 * RATE_SCALE,
    ingest_record_cost=0.05e-6 * RATE_SCALE,
    route_cost=0.05e-6 * RATE_SCALE,
    batch_overhead=20e-6,
    progress_update_cost=1e-6,
)

PAPER_BINS = 1 << 12  # the paper's default bin count


def count_config(**overrides) -> ExperimentConfig:
    """Baseline configuration for the counting microbenchmarks."""
    defaults = dict(
        num_workers=WORKERS,
        workers_per_process=WORKERS_PER_PROCESS,
        num_bins=PAPER_BINS,
        domain=256 * 10**6,
        rate=SIM_RATE,
        duration_s=8.0,
        granularity_ms=10,
        bytes_per_key=8.0,
        cost=BASE_COST,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def nexmark_config(**overrides) -> ExperimentConfig:
    """Baseline configuration for the NEXMark queries."""
    defaults = dict(
        num_workers=WORKERS,
        workers_per_process=WORKERS_PER_PROCESS,
        num_bins=PAPER_BINS,
        rate=SIM_RATE,
        duration_s=10.0,
        granularity_ms=10,
        cost=BASE_COST,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
