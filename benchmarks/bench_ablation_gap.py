"""Ablation: the drain gap between migration steps (paper §4.4).

"We can also insert a gap between migrations to allow the system to
immediately drain enqueued records, rather than during the next migration,
which reduces the maximum latency from two migration durations to just
one."  The effect shows when steps are paced by a timer rather than by
confirmed completion: back-to-back steps force records queued behind one
step to wait through the next one too.

This ablation times one batched step's duration, then paces steps with a
timer at exactly that duration (no drain gap) versus 1.5x it (a drain gap
of half a step), and compares the worst-case latency.  Completion pacing
(the controller's default) is shown as the reference.
"""

from _common import count_config, run_once
from repro.harness.experiment import run_count_experiment
from repro.harness.report import format_duration, format_latency, print_table

DOMAIN = 4096 * 10**6
BASE = dict(
    num_bins=1024,
    domain=DOMAIN,
    duration_s=8.0,
    migrate_at_s=(2.0,),
    strategy="batched",
    batch_size=64,
)


def _run(pace_s=None):
    cfg = count_config(pace_s=pace_s, **BASE)
    return run_count_experiment(cfg)


def bench_ablation_gap(benchmark, sink):
    def run():
        reference = _run()
        steps = reference.migrations[0].steps
        step_s = max(s.duration for s in steps if s.duration is not None)
        return {
            "completion-paced": reference,
            "timer, overlapping (no gap)": _run(pace_s=step_s * 0.5),
            "timer, with drain gap": _run(pace_s=step_s * 1.5),
        }

    results = run_once(benchmark, run)
    rows = [
        (
            label,
            format_latency(res.migration_max_latency(0)),
            format_duration(res.migration_duration(0)),
        )
        for label, res in results.items()
    ]
    print_table(
        "Ablation: drain gap between timer-paced migration steps",
        ["pacing", "max latency", "duration"],
        rows,
        out=sink,
    )
    no_gap = results["timer, overlapping (no gap)"].migration_max_latency(0)
    with_gap = results["timer, with drain gap"].migration_max_latency(0)
    # The drain gap cuts the worst case (paper: from ~2 durations to ~1).
    assert with_gap < no_gap, (with_gap, no_gap)
