"""Figure 16: migration latency vs duration as the bin count varies.

Fixed domain (paper: 4096x10^6 keys), bins from 2^4 to 2^14 by factors of
four.  Expected shape: finer bins push fluid/batched max latency down
without increasing duration; all-at-once stays in one high-latency,
low-duration cluster regardless of granularity.
"""

from _common import run_once
from _sweep_fig import by_strategy, report_sweep, run_point

DOMAIN = 4096 * 10**6
# 16 bins over 16 workers leaves one bin per worker: the paper's
# quarter-state migration has nothing it can split, so the sweep starts
# at 64 bins (granularity 2^6..2^14 by factors of four, as in the paper).
BINS = (64, 256, 1024, 4096, 16384)


def bench_fig16_vary_bins(benchmark, sink):
    def run():
        points = []
        for bins in BINS:
            for strategy in ("all-at-once", "fluid", "batched"):
                points.append(run_point(strategy, num_bins=bins, domain=DOMAIN))
        return points

    points = run_once(benchmark, run)
    report_sweep(
        "Figure 16", f"vary bins, domain {DOMAIN:,} keys", points, sink, "bins"
    )

    fluid = {p["bins"]: p for p in by_strategy(points, "fluid")}
    batched = {p["bins"]: p for p in by_strategy(points, "batched")}
    allatonce = {p["bins"]: p for p in by_strategy(points, "all-at-once")}
    # More bins => lower fluid/batched max latency.
    assert fluid[16384]["max_latency"] < fluid[64]["max_latency"] / 4
    assert batched[16384]["max_latency"] < batched[64]["max_latency"] / 4
    # All-at-once max latency is granularity-independent (single cluster).
    spikes = [p["max_latency"] for p in allatonce.values()]
    assert max(spikes) < 3 * min(spikes), spikes
    # At fine granularity, all-at-once is far above fluid.
    assert allatonce[4096]["max_latency"] > 10 * fluid[4096]["max_latency"]
