"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures as text:
the series/rows are printed and also written to ``benchmarks/results/`` so
they survive output capture.  ``REPRO_BENCH_SCALE`` (default 1.0) scales
run durations and offered rates for quicker or more thorough runs.
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def sink(results_dir, request):
    """A print-like callable that tees to stdout and a per-bench file."""
    name = request.node.name
    path = results_dir / f"{name}.txt"
    handle = path.open("w")

    def emit(*args):
        line = " ".join(str(a) for a in args)
        print(line)
        handle.write(line + "\n")

    yield emit
    handle.close()


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
