"""Ablation: latency-aware adaptive step sizing vs fixed strategies.

The adaptive controller (an Albatross-style throttling policy expressed
through Megaphone's control stream) steers each step's duration toward a
target.  It should land between fluid and all-at-once: close to fluid's
max latency while finishing far sooner than fluid, without hand-picking a
batch size.
"""


from _common import count_config, run_once
from repro.harness.experiment import run_count_experiment
from repro.harness.report import format_duration, format_latency, print_table
from repro.harness.workloads import CountWorkload
from repro.megaphone.adaptive import AdaptiveConfig, AdaptiveMigrationController
from repro.megaphone.migration import imbalanced_target

DOMAIN = 4096 * 10**6
BINS = 1024
TARGET_STEP_S = 0.3


def _run_fixed(strategy):
    cfg = count_config(
        num_bins=BINS, domain=DOMAIN, duration_s=8.0,
        migrate_at_s=(2.0,), strategy=strategy, batch_size=16,
    )
    return run_count_experiment(cfg)


def _run_adaptive():
    """Wire the adaptive controller through the standard experiment."""
    from repro.harness.experiment import _build_megaphone_count

    cfg = count_config(num_bins=BINS, domain=DOMAIN, duration_s=8.0)
    workload = CountWorkload(domain=cfg.domain, seed=cfg.seed)

    # The standard harness always uses the plan-driven controller, so this
    # assembles the same pieces around the adaptive one.
    from repro.megaphone.controller import EpochTicker
    from repro.harness.latency import EpochLatencyRecorder, LatencyTimeline
    from repro.harness.openloop import OpenLoopSource
    from repro.sim.engine import Simulator
    from repro.sim.network import Cluster
    from repro.timely.dataflow import Dataflow
    import time as wallclock

    started = wallclock.perf_counter()
    sim = Simulator()
    cluster = Cluster(
        sim, num_workers=cfg.num_workers,
        workers_per_process=cfg.workers_per_process,
        bandwidth_bytes_per_s=cfg.bandwidth_bytes_per_s,
        network_latency_s=cfg.network_latency_s, cost=cfg.resolved_cost(),
    )
    df = Dataflow(cluster)
    control, control_group = df.new_input("control")
    data, data_group = df.new_input("data")
    out, op, state_fn = _build_megaphone_count(df, control, data, cfg)
    probe = df.probe(out)
    runtime = df.build()
    timeline = LatencyTimeline()
    recorder = EpochLatencyRecorder(runtime, probe, cfg.granularity_ms, timeline)
    source = OpenLoopSource(
        runtime, data_group, workload.make_generator(), rate=cfg.rate,
        duration_s=cfg.duration_s, granularity_ms=cfg.granularity_ms,
        recorder=recorder,
    )
    ticker = EpochTicker(runtime, control_group, granularity_ms=cfg.granularity_ms)
    controller = AdaptiveMigrationController(
        runtime, control_group, ticker, probe,
        op.config.initial, imbalanced_target(op.config.initial),
        config=AdaptiveConfig(initial_batch=2, target_step_s=TARGET_STEP_S),
    )
    controller.start_at(2.0)
    ticker.start()
    source.start()
    runtime.run(until=cfg.duration_s + 1.0)
    guard = 0
    while not controller.done:
        runtime.sim.run(max_events=100_000)
        guard += 1
        assert guard < 10_000
    ticker.stop()
    runtime.run_to_quiescence()

    from repro.harness.experiment import ExperimentResult
    result = ExperimentResult(
        config=cfg, timeline=timeline, migrations=[controller.result],
        records_injected=source.records_injected,
        sim_events=sim.events_processed,
        wall_seconds=wallclock.perf_counter() - started,
    )
    result.batch_history = controller.batch_history
    return result


def bench_ablation_adaptive(benchmark, sink):
    def run():
        return {
            "fluid": _run_fixed("fluid"),
            "all-at-once": _run_fixed("all-at-once"),
            "adaptive": _run_adaptive(),
        }

    results = run_once(benchmark, run)
    rows = [
        (
            label,
            format_latency(res.migration_max_latency(0)),
            format_duration(res.migration_duration(0)),
            len(res.migrations[0].steps),
        )
        for label, res in results.items()
    ]
    print_table(
        f"Ablation: adaptive step sizing (target step {TARGET_STEP_S * 1000:.0f} ms)",
        ["controller", "max latency", "duration", "steps"],
        rows,
        out=sink,
    )
    sink("adaptive batch history: " + str(results["adaptive"].batch_history))

    adaptive = results["adaptive"]
    fluid = results["fluid"]
    allatonce = results["all-at-once"]
    # Adaptive: far below all-at-once's latency...
    assert adaptive.migration_max_latency(0) < allatonce.migration_max_latency(0) / 5
    # ...and far below fluid's duration.
    assert adaptive.migration_duration(0) < fluid.migration_duration(0) / 2
    # The batch size actually adapted.
    assert len(set(adaptive.batch_history)) > 1
