"""Figure 7: NEXMark Q3 (incremental join, unbounded state).

All-at-once shows a visible spike at the rebalancing migration; batched
stays an order of magnitude lower.  The paper also plots the native
implementation's (migration-free) baseline for comparison.
"""

from _common import run_once
from _nexmark_fig import report_figure, run_figure
from repro.nexmark.config import NexmarkConfig

NEX = NexmarkConfig(state_bytes_scale=4096.0)


def bench_fig07_q3(benchmark, sink):
    results = run_once(
        benchmark,
        lambda: run_figure(3, sink, nexmark=NEX, extra_variants=("native",)),
    )
    report_figure("Figure 7", 3, results, sink)
    spike = results["all-at-once"].migration_max_latency(1)
    batched = results["batched"].migration_max_latency(1)
    assert spike > 3 * batched, (spike, batched)
    # The native baseline has no migrations and low steady latency.
    assert results["native"].steady_max_latency() < 0.1
