"""Figure 13: hash-count overhead, 256x10^6 keys, 4x10^6 updates/s.

Per-record latency CCDF and percentile table for Megaphone at bin counts
2^4..2^20 versus the native implementation, using hash-map bins.
"""

from _common import run_once
from _overhead_fig import check_overhead_shape, report_overhead, run_overhead

DOMAIN = 256 * 10**6


def bench_fig13_hashcount(benchmark, sink):
    results = run_once(benchmark, lambda: run_overhead(DOMAIN, variant="hash"))
    report_overhead("Figure 13", "hash-count, 256M keys", results, sink)
    check_overhead_shape(results)
