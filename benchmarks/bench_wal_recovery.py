"""Durable recovery timeline: crash mid-migration with torn WAL storage.

Figure 20 style timeline, durability extension.  The chaos ``crash-storage``
scenario on the ``wal`` backend kills the migration-target process
mid-step, tears its final log frame, and drops the unsynced tail; the
process restarts one second later and rebuilds its bins from the damaged
log alone.  A clean-storage ``crash-restart`` twin (same seed, same
schedule, undamaged log) pins down what recovery *should* reconstruct.

Expected shape:

* both runs keep the Completion guarantee (verdict completed/recovered);
* durable recovery detects the torn frame via checksums, truncates the log
  back to the last valid frame, and replays the rest — surfacing a
  structured ``StorageFaultReport`` with non-zero ``truncated_bytes``;
* the recovered per-worker fingerprints are byte-identical to the
  clean-storage twin: the damage cost nothing the fsync horizon promised;
* latency spikes at the crash and settles again once replay finishes.
"""

from _common import run_once

from repro.chaos.experiment import (
    default_chaos_experiment_config,
    run_chaos_experiment,
)
from repro.harness.report import format_bytes, print_table

SEED = 3
CRASH_AT = 2.15  # migrate_at 2.0s + FAULT_DELAY_S
RESTART_AT = CRASH_AT + 1.0


def _run(scenario):
    cfg = default_chaos_experiment_config(state_backend="wal")
    return run_chaos_experiment(scenario, "batched", cfg=cfg, seed=SEED)


def bench_wal_recovery(benchmark, sink):
    faulted, clean = run_once(
        benchmark,
        lambda: (_run("crash-storage"), _run("crash-restart")),
    )

    assert faulted.live, faulted.verdict
    assert clean.live, clean.verdict

    tl = faulted.result.timeline
    rows = [
        (f"{stats.start_s:.2f}", f"{stats.max_s * 1000:8.2f}")
        for stats in tl.series()
        if 1.5 <= stats.start_s <= 5.5
    ]
    print_table(
        "WAL crash-storage timeline (crash 2.15s, restart 3.15s)",
        ["time [s]", "max latency [ms]"],
        rows,
        out=sink,
    )

    reports = faulted.result.storage_faults
    assert reports, "durable recovery surfaced no storage damage"
    print_table(
        "storage fault reports (durable recovery)",
        ["worker", "torn", "truncated", "lost tail", "frames", "bins"],
        [
            (
                r.worker,
                "yes" if r.torn_frame else "no",
                format_bytes(r.truncated_bytes),
                format_bytes(r.lost_tail_bytes),
                r.frames_replayed,
                r.bins_recovered,
            )
            for r in reports
        ],
        out=sink,
    )

    # Recovery detected and repaired the torn write, then replayed the rest.
    for report in reports:
        assert report.torn_frame
        assert report.truncated_bytes > 0
        assert report.frames_replayed > 0
        assert report.bins_recovered > 0
    # The damage changed nothing behind the fsync horizon: fingerprints
    # match the clean-storage twin byte for byte.
    assert faulted.result.recovered_fingerprints == (
        clean.result.recovered_fingerprints
    )
    assert not clean.result.storage_faults
    # Service settled after replay: the crash window holds the worst
    # latency of the run's tail half.
    spike = tl.max_between(CRASH_AT - 0.1, RESTART_AT + 1.0)
    tail = tl.max_between(RESTART_AT + 1.0, 6.5)
    assert spike > 0
    assert tail <= spike
    sink(f"crash-window max latency {spike * 1000:8.2f} ms")
    sink(f"post-recovery max latency {tail * 1000:8.2f} ms")
