"""Elastic scaling: time-to-stable-p99, fluid vs pause-and-restart.

The tail-latency cost of a membership change is not how long the state
movement takes but how long the pipeline's p99 stays outside its SLO.
This benchmark scripts the acceptance scenario — scale out 4 -> 6 two
seconds in, drain back 6 -> 4 at five seconds — under a constrained
migration link, and measures *time-to-stable-p99*: the interval from the
scaling event until the windowed p99 permanently re-enters the SLO.

Fluid migration hands bins over one at a time, so no window stalls longer
than one bin's transfer and the p99 never leaves the SLO for long.  The
pause-and-restart proxy (the all-at-once strategy) reroutes every moved
bin in a single step, queueing the affected keys' records behind one bulk
transfer — the classic stop-the-world rescale.  Correctness is pinned the
same way the CLI's twin check does it: the elastic run must produce the
same record count and the same global state fingerprint as a
static-membership twin, and drained workers must end empty.
"""

from _common import count_config, run_once

from repro.elastic import ScalingPlan
from repro.harness.experiment import run_count_experiment

# The SLO the stabilization clock checks against: a windowed p99 at or
# under 25 ms counts as stable.  One fluid bin transfer (~4 ms on the
# constrained link) sits well inside it; the all-at-once bulk step
# (~85 bins at once) cannot.
SLO_P99_S = 0.025

JOIN_AT_S = 2.0
DRAIN_AT_S = 5.0


def elastic_config(strategy, scaling_plan="join@2:4,5;leave@5:4,5", **overrides):
    defaults = dict(
        num_workers=6,
        workers_per_process=2,
        num_bins=256,
        domain=1 << 12,
        rate=20_000.0,
        duration_s=8.0,
        bytes_per_key=8192.0,
        bandwidth_bytes_per_s=32e6,
        active_workers=4,
        scaling_plan=(
            ScalingPlan.parse(scaling_plan) if scaling_plan else None
        ),
        strategy=strategy,
        batch_size=16,
        migrate_at_s=(),
        fingerprint_state=True,
    )
    defaults.update(overrides)
    return count_config(**defaults)


def time_to_stable_p99(series, event_s, horizon_s, slo_s=SLO_P99_S):
    """Seconds from ``event_s`` until the p99 permanently re-enters the SLO.

    Scans the latency windows between the event and the horizon (the next
    scaling event, or the end of input) for the first window from which
    every later window's p99 stays at or under ``slo_s``; a run that never
    stabilizes scores the full interval.
    """
    windows = [w for w in series if event_s <= w.start_s < horizon_s]
    for i, window in enumerate(windows):
        if all(w.p99_s <= slo_s for w in windows[i:]):
            return max(0.0, window.start_s - event_s)
    return horizon_s - event_s


def stabilization(result):
    series = result.timeline.series()
    end_s = max(w.start_s for w in series) + 0.25
    return (
        time_to_stable_p99(series, JOIN_AT_S, DRAIN_AT_S),
        time_to_stable_p99(series, DRAIN_AT_S, end_s),
    )


def bench_elastic(benchmark, sink):
    def run():
        fluid = run_count_experiment(elastic_config("fluid"))
        pause = run_count_experiment(elastic_config("all-at-once"))
        twin = run_count_experiment(
            elastic_config("fluid", scaling_plan=None)
        )
        return fluid, pause, twin

    fluid, pause, twin = run_once(benchmark, run)

    fluid_join, fluid_drain = stabilization(fluid)
    pause_join, pause_drain = stabilization(pause)

    sink("elastic 4->6->4, time-to-stable-p99 "
         f"(SLO {SLO_P99_S * 1000:.0f} ms, 256 bins, 6 slots)")
    sink(f"  fluid           join {fluid_join:5.2f} s   drain {fluid_drain:5.2f} s"
         f"   max latency {fluid.overall_max_latency() * 1000:8.2f} ms")
    sink(f"  pause-restart   join {pause_join:5.2f} s   drain {pause_drain:5.2f} s"
         f"   max latency {pause.overall_max_latency() * 1000:8.2f} ms")

    # Both runs complete every scaling operation and empty the drained
    # workers before their handles close.
    for result in (fluid, pause):
        assert all(
            op.completed_at is not None for op in result.scaling.operations
        )
        assert result.scaling.residual_bins == 0
    # Zero lost or duplicated records: the elastic run's record count and
    # global state fingerprint match the static-membership twin exactly.
    assert fluid.records_injected == twin.records_injected
    assert fluid.cluster_fingerprint == twin.cluster_fingerprint
    sink(f"  twin fingerprint match: {fluid.cluster_fingerprint[:16]}...")

    # The headline: fluid restabilizes strictly faster than
    # pause-and-restart after both the scale-out and the drain.
    assert fluid_join < pause_join
    assert fluid_drain < pause_drain
