"""Shared driver for the NEXMark latency-timeline figures (5-12).

Each figure shows the service-latency timeline of one query around a
rebalancing migration, comparing all-at-once with Megaphone's batched
strategy.  The paper migrates at 400 s and reports the second (rebalance)
migration at 800 s; scaled to simulation time we migrate twice within a
shorter run and report the second migration the same way.
"""

from _common import nexmark_config
from repro.harness.report import (
    format_duration,
    format_latency,
    print_table,
    print_timeline,
)
from repro.nexmark.config import NexmarkConfig
from repro.nexmark.harness import run_nexmark_experiment

MIGRATE_FIRST = 3.0
MIGRATE_SECOND = 6.0
DURATION = 9.0


def nexmark_cfg_for(query: int, strategy: str, stateful: bool, **overrides):
    migrate = (MIGRATE_FIRST, MIGRATE_SECOND) if stateful else (MIGRATE_FIRST,)
    defaults = dict(
        duration_s=DURATION,
        migrate_at_s=migrate,
        strategy=strategy,
        batch_size=64,
    )
    defaults.update(overrides)
    return nexmark_config(**defaults)


def run_figure(query: int, sink, stateful: bool = True, dilation: int = 1,
               nexmark: NexmarkConfig = None, extra_variants=(), **overrides):
    """Run the all-at-once vs batched comparison and print the figure."""
    results = {}
    for strategy in ("all-at-once", "batched"):
        cfg = nexmark_cfg_for(query, strategy, stateful, dilation=dilation, **overrides)
        results[strategy] = run_nexmark_experiment(query, cfg, nexmark=nexmark)
    for variant in extra_variants:
        if variant == "native":
            cfg = nexmark_cfg_for(query, "batched", False, dilation=dilation,
                                  migrate_at_s=(), **overrides)
            results["native"] = run_nexmark_experiment(
                query, cfg, nexmark=nexmark, native=True
            )
    return results


def report_figure(figure: str, query: int, results, sink, stateful: bool = True):
    rows = []
    for strategy, res in results.items():
        if res.migrations:
            index = len(res.migrations) - 1
            migration_max = format_latency(res.migration_max_latency(index))
            duration = format_duration(res.migration_duration(index))
        else:
            migration_max, duration = "-", "-"
        rows.append(
            (
                strategy,
                migration_max,
                duration,
                format_latency(res.steady_max_latency()),
                format_latency(res.timeline.overall.percentile(0.99)),
            )
        )
    print_table(
        f"{figure}: NEXMark Q{query} ({'second (rebalance)' if stateful else 'single'} migration)",
        ["strategy", "max latency (migration)", "duration", "steady max", "p99 overall"],
        rows,
        out=sink,
    )
    for strategy, res in results.items():
        if not res.migrations:
            continue
        start = MIGRATE_SECOND - 1 if stateful else MIGRATE_FIRST - 1
        print_timeline(
            f"{figure} timeline: {strategy}",
            [s for s in res.timeline.series() if start <= s.start_s <= start + 3.0],
            out=sink,
        )
