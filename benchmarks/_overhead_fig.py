"""Shared driver for the steady-state overhead figures (13-15).

No migration occurs: the cost is Megaphone's routing indirection and bin
bookkeeping versus a native implementation, as the bin count grows from
2^4 to 2^20.  Each figure reports the per-record latency CCDF and the
paper's percentile table (90 / 99 / 99.99 / max).
"""

from _common import count_config
from repro.harness.experiment import run_count_experiment
from repro.harness.report import format_latency, print_ccdf, print_table

LOG_BIN_COUNTS = (4, 6, 8, 10, 12, 14, 16, 18, 20)


def run_overhead(domain: int, variant: str, duration_s: float = 3.0):
    """One (experiment label -> result) map across bin counts + native."""
    results = {}
    for log_bins in LOG_BIN_COUNTS:
        cfg = count_config(
            domain=domain,
            num_bins=1 << log_bins,
            duration_s=duration_s,
            variant=variant,
        )
        results[str(log_bins)] = run_count_experiment(cfg)
    cfg = count_config(
        domain=domain, duration_s=duration_s, variant=variant, native=True
    )
    results["Native"] = run_count_experiment(cfg)
    return results


def report_overhead(figure: str, title: str, results, sink):
    rows = []
    for label, res in results.items():
        hist = res.timeline.overall
        rows.append(
            (
                label,
                format_latency(hist.percentile(0.90)),
                format_latency(hist.percentile(0.99)),
                format_latency(hist.percentile(0.9999)),
                format_latency(hist.max_value),
            )
        )
    print_table(
        f"{figure}: {title} — selected percentiles (experiment = log2 bins)",
        ["experiment", "90%", "99%", "99.99%", "max"],
        rows,
        out=sink,
    )
    for label in ("4", "12", "20", "Native"):
        print_ccdf(
            f"{figure} CCDF: experiment {label}",
            results[label].timeline.overall.ccdf(),
            out=sink,
            max_points=15,
        )


def check_overhead_shape(results):
    """The paper's qualitative claims for Figures 13-15."""
    p99 = {k: r.timeline.overall.percentile(0.99) for k, r in results.items()}
    # Up to 2^12 bins: small constant factor over native.
    assert p99["12"] <= 6 * p99["Native"], (p99["12"], p99["Native"])
    # Blow-up at 2^20 bins.
    assert p99["20"] > 10 * p99["12"], (p99["20"], p99["12"])
    # Monotone-ish degradation past the knee.
    assert p99["20"] > p99["16"]
