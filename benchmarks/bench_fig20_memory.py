"""Figure 20: per-process memory (modeled RSS) over time.

Key-count with 16x10^9 keys and 4096 bins, migrations at two points, one
run per strategy.  Expected shape: similar steady-state RSS for all
strategies; all-at-once shows a large transient allocation spike at each
migration (serialized state backing up in the send queues); fluid and
batched stay flat because one-bin-at-a-time flow control bounds the
temporary state.
"""

from _common import count_config, run_once
from repro.harness.experiment import run_count_experiment
from repro.harness.report import format_bytes, print_table

DOMAIN = 16 * 10**9
BINS = 4096
MIGRATIONS = (2.0, 4.0)


def _run(strategy):
    cfg = count_config(
        num_bins=BINS,
        domain=DOMAIN,
        duration_s=6.0,
        migrate_at_s=MIGRATIONS,
        strategy=strategy,
        batch_size=16,
        sample_memory=True,
        memory_sample_s=0.05,
        # A 10 GbE-class link so the backlog is visible at this state size.
        bandwidth_bytes_per_s=1.25e9,
    )
    return run_count_experiment(cfg)


def bench_fig20_memory(benchmark, sink):
    results = run_once(
        benchmark,
        lambda: {s: _run(s) for s in ("all-at-once", "fluid", "batched")},
    )

    rows = []
    overshoots = {}
    for strategy, res in results.items():
        worst_overshoot = 0.0
        steady = 0.0
        for tl in res.memory:
            base = max(tl.at(1.8), tl.at(5.8))
            steady = max(steady, base)
            worst_overshoot = max(worst_overshoot, tl.peak() - base)
        overshoots[strategy] = worst_overshoot
        rows.append(
            (strategy, format_bytes(steady), format_bytes(worst_overshoot))
        )
    print_table(
        "Figure 20: modeled RSS — steady level and worst migration overshoot",
        ["strategy", "steady RSS (max process)", "transient overshoot"],
        rows,
        out=sink,
    )

    for strategy, res in results.items():
        series = [
            (f"{s.time:.2f}", format_bytes(s.rss_bytes))
            for s in res.memory[0].samples
            if 1.5 <= s.time <= 5.5
        ]
        print_table(
            f"Figure 20 timeline (process 0): {strategy}",
            ["time [s]", "RSS"],
            series[::4],
            out=sink,
        )

    assert overshoots["all-at-once"] > 3 * overshoots["fluid"]
    assert overshoots["all-at-once"] > 3 * overshoots["batched"]
