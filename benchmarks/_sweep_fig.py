"""Shared driver for the migration micro-benchmark sweeps (Figures 16-18).

Each point runs the key-count workload to a steady state, performs one
migration of a quarter of the state under one of the three strategies, and
reports (duration, max latency) — the axes of the paper's scatter plots.
"""

from _common import count_config
from repro.harness.experiment import run_count_experiment
from repro.harness.report import format_duration, format_latency, print_table

STRATEGIES = ("all-at-once", "fluid", "batched")
MIGRATE_AT = 2.0


def run_point(strategy: str, num_bins: int, domain: int, rate=None, **overrides):
    cfg = count_config(
        num_bins=num_bins,
        domain=domain,
        duration_s=5.0,
        migrate_at_s=(MIGRATE_AT,),
        strategy=strategy,
        # A fixed number of bins per batch: finer bins shrink the state a
        # batched step moves, which is the granularity effect Figures
        # 16-18 are about.
        batch_size=16,
        **({"rate": rate} if rate is not None else {}),
        **overrides,
    )
    res = run_count_experiment(cfg)
    return {
        "strategy": strategy,
        "bins": num_bins,
        "domain": domain,
        "duration": res.migration_duration(0),
        "max_latency": res.migration_max_latency(0),
        "steady": res.steady_max_latency(),
    }


def report_sweep(figure: str, title: str, points, sink, label_key: str):
    rows = [
        (
            p["strategy"],
            p[label_key],
            format_duration(p["duration"]),
            format_latency(p["max_latency"]),
            format_latency(p["steady"]),
        )
        for p in points
    ]
    print_table(
        f"{figure}: {title}",
        ["strategy", label_key, "duration", "max latency", "steady max"],
        rows,
        out=sink,
    )


def by_strategy(points, strategy):
    return [p for p in points if p["strategy"] == strategy]
