"""Figure 19: offered load versus maximum latency.

The paper sweeps the offered rate from 0.25M to 32M records/s over the
strategies (plus a non-migrating run): latency is rate-invariant until the
system saturates, all strategies saturate at a similar point, and below
saturation all-at-once max latency sits 10-100x above fluid/batched.

The sweep is expressed as fractions of the paper's headline rate; the
simulation materializes RATE_SCALE times fewer records at proportionally
larger per-record cost, so the saturation point lands at the same relative
load.
"""

from _common import BASE_COST, PAPER_BINS, PAPER_RATE, RATE_SCALE, run_once
from _sweep_fig import run_point
from repro.harness.experiment import run_count_experiment
from repro.harness.report import format_count, format_latency, print_table
from _common import count_config

DOMAIN = 16384 * 10**6
# Paper rates 0.25M..32M; keep the materialized record volume tractable.
RATE_FRACTIONS = (1 / 16, 1 / 8, 1 / 4, 1 / 2, 1, 2, 4, 8)
# The paper's deployment saturates between 16M and 32M records/s; doubling
# the per-record CPU relative to the shared baseline puts the knee at the
# same relative position for this sweep.
COST = BASE_COST.with_overrides(record_cost=0.5e-6 * RATE_SCALE)


def bench_fig19_throughput(benchmark, sink):
    def run():
        points = []
        for fraction in RATE_FRACTIONS:
            rate = PAPER_RATE * fraction / RATE_SCALE
            paper_rate = PAPER_RATE * fraction
            for strategy in ("all-at-once", "fluid", "batched"):
                p = run_point(
                    strategy, num_bins=PAPER_BINS, domain=DOMAIN, rate=rate,
                    cost=COST,
                )
                p["paper_rate"] = paper_rate
                points.append(p)
            cfg = count_config(
                num_bins=PAPER_BINS, domain=DOMAIN, rate=rate,
                duration_s=5.0, native=False, cost=COST,
            )
            res = run_count_experiment(cfg)
            points.append(
                {
                    "strategy": "non-migrating",
                    "paper_rate": paper_rate,
                    "duration": 0.0,
                    "max_latency": res.overall_max_latency(),
                    "steady": res.steady_max_latency(),
                    "bins": PAPER_BINS,
                    "domain": DOMAIN,
                }
            )
        return points

    points = run_once(benchmark, run)
    rows = [
        (
            p["strategy"],
            format_count(p["paper_rate"]) + "/s",
            format_latency(p["max_latency"]),
        )
        for p in points
    ]
    print_table(
        "Figure 19: offered load vs max latency (rates in paper-equivalents)",
        ["strategy", "rate", "max latency"],
        rows,
        out=sink,
    )

    def series(strategy):
        return {
            p["paper_rate"]: p["max_latency"]
            for p in points
            if p["strategy"] == strategy
        }

    non_migrating = series("non-migrating")
    fluid = series("fluid")
    allatonce = series("all-at-once")
    rates = sorted(non_migrating)
    headline = PAPER_RATE
    # Latency is roughly rate-invariant below saturation...
    assert non_migrating[headline] < 10 * non_migrating[rates[0]]
    # ...and blows up when the offered load exceeds capacity.
    assert non_migrating[rates[-1]] > 20 * non_migrating[headline]
    # Below saturation, all-at-once is 10-100x above fluid.
    assert allatonce[headline] > 10 * fluid[headline]
